package shard

import (
	"context"
	"fmt"
	"sort"
	"time"

	"flexitrust/internal/kvstore"
	"flexitrust/internal/txn"
)

// Cross-shard transactions: the sharded cluster owns one transaction
// arbiter — a coordinator-side trusted counter in the reserved namespace
// txn.CoordinatorNamespace with its own attestation authority — plus the
// attestation log participants resolve in-doubt transactions against. Every
// Session drives two-phase commits through them (Session.Txn / MultiPut);
// the per-shard prepare/decision operations execute through each group's
// consensus like any other kvstore operation, so prepared intents are
// replicated inside each shard.

// submitShard executes op on one specific group (bypassing key routing —
// transaction decisions target shards, not keys) and maintains the group's
// watermark and metrics like the single-shard fast path does.
func (s *Session) submitShard(ctx context.Context, shardIdx int, op *kvstore.Op) ([]byte, error) {
	g := s.c.groups[shardIdx]
	g.noteSubmit()
	start := time.Now()
	res, seq, err := s.clients[shardIdx].SubmitSeq(ctx, op.Encode())
	if err != nil {
		return nil, err
	}
	g.noteCommit(seq, time.Since(start))
	return res, nil
}

// Txn executes writes as one atomic cross-shard transaction: intents
// prepare on every participant shard, one attested counter access decides,
// and the decision drives to the participants. On ErrAborted no write is
// visible anywhere; on success all are.
func (s *Session) Txn(ctx context.Context, writes []kvstore.TxnWrite) (*txn.Result, error) {
	return s.TxnWithOptions(ctx, writes, txn.Options{})
}

// TxnWithOptions is Txn with crash injection (recovery tests).
func (s *Session) TxnWithOptions(ctx context.Context, writes []kvstore.TxnWrite, opts txn.Options) (*txn.Result, error) {
	return s.coord.Execute(ctx, writes, opts)
}

// MultiPut atomically upserts a set of keys that may span shards — the
// transactional counterpart of per-key Put. Writes are ordered by key so
// the transaction is deterministic regardless of map iteration.
func (s *Session) MultiPut(ctx context.Context, writes map[uint64][]byte) error {
	ws := make([]kvstore.TxnWrite, 0, len(writes))
	for k, v := range writes {
		ws = append(ws, kvstore.TxnWrite{Key: k, Code: kvstore.OpInsert, Value: v})
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Key < ws[j].Key })
	_, err := s.Txn(ctx, ws)
	return err
}

// ResolveTxn settles an in-doubt transaction (a coordinator that vanished
// mid-flight): the attestation log's published decision wins; with none,
// the arbiter mints an abort. The winning decision is then driven to every
// shard — idempotent for shards that already decided, and poisoning for
// shards whose Prepare never arrived. Call it only after the in-doubt
// timeout: resolving a live coordinator's transaction aborts work it would
// have committed (safe — the first published decision still governs — just
// wasteful).
func (s *Session) ResolveTxn(ctx context.Context, txid uint64) (txn.Decision, error) {
	d, err := txn.ResolveInDoubt(s.c.txnLog, s.c.arbiter, txid)
	if err != nil {
		return d, err
	}
	errs := make(chan error, len(s.c.groups))
	for idx := range s.c.groups {
		go func(idx int) {
			_, err := s.submitShard(ctx, idx, kvstore.EncodeTxnDecision(d.Commit, d.TxID, 0))
			errs <- err
		}(idx)
	}
	var first error
	for range s.c.groups {
		if err := <-errs; err != nil && first == nil {
			first = fmt.Errorf("shard: driving resolved txn %d: %w", txid, err)
		}
	}
	return d, first
}

// TxnLog exposes the cluster's decision log (tests, monitoring).
func (c *Cluster) TxnLog() *txn.AttestationLog { return c.txnLog }

// Arbiter exposes the cluster's transaction arbiter (tests account its
// accesses; one per decision).
func (c *Cluster) Arbiter() txn.Arbiter { return c.arbiter }
