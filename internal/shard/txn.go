package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"flexitrust/internal/kvstore"
	"flexitrust/internal/obs"
	"flexitrust/internal/txn"
	"flexitrust/internal/types"
)

// Cross-shard transactions: the sharded cluster owns one transaction
// arbiter — a coordinator-side trusted counter in the reserved namespace
// txn.CoordinatorNamespace with its own attestation authority — plus the
// attestation log participants resolve in-doubt transactions against. Every
// Session drives two-phase commits through them (Session.Txn / MultiPut);
// the per-shard prepare/decision operations execute through each group's
// consensus like any other kvstore operation, so prepared intents are
// replicated inside each shard.

// submitShard executes op on one specific group (bypassing key routing —
// transaction decisions and handoff operations target shards, not keys)
// and maintains the group's watermark and metrics like the single-shard
// fast path does.
func (s *Session) submitShard(ctx context.Context, shardIdx int, op *kvstore.Op) ([]byte, error) {
	res, _, _, err := s.submitShardSeq(ctx, shardIdx, op)
	return res, err
}

// submitShardSeq is submitShard exposing the consensus sequence the reply
// quorum committed at (MultiGet's version vector needs it) and the view it
// executed in (request traces annotate it).
func (s *Session) submitShardSeq(ctx context.Context, shardIdx int, op *kvstore.Op) ([]byte, types.SeqNum, types.View, error) {
	g := s.c.groups[shardIdx]
	g.noteSubmit()
	defer g.noteDone()
	start := time.Now()
	res, seq, view, err := s.clients[shardIdx].SubmitObserved(ctx, op.Encode())
	if err != nil {
		return nil, 0, 0, err
	}
	lat := time.Since(start)
	g.noteCommit(seq, lat)
	s.c.obs.Metrics().Histogram(obs.GroupLabel(obs.MShardOpLatency, shardIdx)).ObserveDuration(lat)
	return res, seq, view, nil
}

// Txn executes writes as one atomic cross-shard transaction: intents
// prepare on every participant shard, one attested counter access decides,
// and the decision drives to the participants. On ErrAborted no write is
// visible anywhere; on success all are.
func (s *Session) Txn(ctx context.Context, writes []kvstore.TxnWrite) (*txn.Result, error) {
	return s.TxnWithOptions(ctx, writes, txn.Options{})
}

// TxnWithOptions is Txn with crash injection (recovery tests). A
// transaction voted down because the session's placement was stale — a
// participant answered WrongShard or RangeMigrating for a moved or
// mid-handoff range — is transparently retried (as a fresh transaction id)
// through a refreshed placement epoch; crash-injected executions are never
// retried.
func (s *Session) TxnWithOptions(ctx context.Context, writes []kvstore.TxnWrite, opts txn.Options) (*txn.Result, error) {
	for attempt := 0; ; attempt++ {
		res, err := s.coord.Execute(ctx, writes, opts)
		injected := opts.CrashAt != txn.PhaseNone || opts.DriveOnly != nil
		if injected || !errors.Is(err, txn.ErrAborted) || !votesPlacementStale(res) || attempt >= routeRetryMax {
			return res, err
		}
		pm := s.placement()
		if s.refreshPlacement().Epoch() == pm.Epoch() {
			select {
			case <-ctx.Done():
				return res, err
			case <-time.After(routeRetryDelay):
			}
		}
	}
}

// votesPlacementStale reports whether a vote named a stale-placement
// refusal.
func votesPlacementStale(res *txn.Result) bool {
	if res == nil {
		return false
	}
	for _, v := range res.Votes {
		if v == kvstore.WrongShard || v == kvstore.RangeMigrating {
			return true
		}
	}
	return false
}

// MultiPut atomically upserts a set of keys that may span shards — the
// transactional counterpart of per-key Put. Writes are ordered by key so
// the transaction is deterministic regardless of map iteration.
func (s *Session) MultiPut(ctx context.Context, writes map[uint64][]byte) error {
	ws := make([]kvstore.TxnWrite, 0, len(writes))
	for k, v := range writes {
		ws = append(ws, kvstore.TxnWrite{Key: k, Code: kvstore.OpInsert, Value: v})
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Key < ws[j].Key })
	_, err := s.Txn(ctx, ws)
	return err
}

// ResolveTxn settles an in-doubt transaction or range handoff (a
// coordinator that vanished mid-flight): the attestation log's published
// decision wins; with none, the arbiter mints an abort. A resolved
// placement commit first re-installs the proposed map (verified against
// the published placement digest) so routing flips with it. The winning
// decision is then driven to every shard — idempotent for shards that
// already decided, and poisoning for shards whose Prepare/Freeze never
// arrived. Call it only after the in-doubt timeout: resolving a live
// coordinator's transaction aborts work it would have committed (safe —
// the first published decision still governs — just wasteful).
func (s *Session) ResolveTxn(ctx context.Context, txid uint64) (txn.Decision, error) {
	d, err := txn.ResolveInDoubt(s.c.txnLog, s.c.arbiter, txid)
	if err != nil {
		return d, err
	}
	if d.Commit && d.IsPlacement() {
		if pm := s.c.proposal(txid); pm != nil && pm.Digest() == d.Placement {
			// An already-superseded epoch fails monotonicity; that only
			// means someone installed it (or a successor) before us.
			_ = s.c.installPlacement(pm)
		}
	}
	errs := make(chan error, len(s.c.groups))
	for idx := range s.c.groups {
		go func(idx int) {
			_, err := s.submitShard(ctx, idx, kvstore.EncodeTxnDecision(d.Commit, d.TxID, 0))
			errs <- err
		}(idx)
	}
	var first error
	for range s.c.groups {
		if err := <-errs; err != nil && first == nil {
			first = fmt.Errorf("shard: driving resolved txn %d: %w", txid, err)
		}
	}
	if first == nil {
		s.c.settleHandoff(txid)
		s.refreshPlacement()
	}
	return d, first
}

// CompactTxnHistory gossips the stability watermark — the oldest
// transaction/handoff id any coordinator may still retry — to every shard
// and prunes the attestation log below it. Shards drop their per-id
// decision history at or below the watermark; late retries naming a pruned
// id are refused deterministically (kvstore.TxnStale) instead of re-acted.
// Returns the watermark driven.
func (s *Session) CompactTxnHistory(ctx context.Context) (uint64, error) {
	wm := s.c.stability.Stable()
	if wm == 0 {
		return 0, nil
	}
	s.c.txnLog.Compact(wm)
	errs := make(chan error, len(s.c.groups))
	for idx := range s.c.groups {
		go func(idx int) {
			res, err := s.submitShard(ctx, idx, kvstore.EncodeTxnCompact(wm))
			if err == nil && string(res) != "OK" {
				err = fmt.Errorf("compaction refused: %s", res)
			}
			errs <- err
		}(idx)
	}
	var first error
	for range s.c.groups {
		if err := <-errs; err != nil && first == nil {
			first = fmt.Errorf("shard: compacting to watermark %d: %w", wm, err)
		}
	}
	return wm, first
}

// StabilityWatermark returns the current stability watermark (the id
// CompactTxnHistory would gossip now).
func (c *Cluster) StabilityWatermark() uint64 { return c.stability.Stable() }

// TxnLog exposes the cluster's decision log (tests, monitoring).
func (c *Cluster) TxnLog() *txn.AttestationLog { return c.txnLog }

// Arbiter exposes the cluster's transaction arbiter (tests account its
// accesses; one per decision).
func (c *Cluster) Arbiter() txn.Arbiter { return c.arbiter }
