package shard

import (
	"encoding/binary"
	"fmt"
	"sort"

	"flexitrust/internal/crypto"
	"flexitrust/internal/kvstore"
	"flexitrust/internal/types"
)

// Range is a contiguous interval of the 64-bit key-HASH space, inclusive on
// both ends. Placement is expressed over kvstore.KeyHash — the one hash
// every partitioning layer agrees on — not over raw keys, so dense integer
// keyspaces spread uniformly across range assignments.
type Range = kvstore.HashRange

// Assignment maps one hash range to the consensus group that owns it.
type Assignment struct {
	Range
	Group int
}

// PlacementMap is the epoch-versioned ownership map of the keyspace:
// explicit hash-range → group assignments under a monotonically increasing
// epoch number, with a deterministic serialization and digest. It replaces
// the fixed `hash mod S` router: because assignments are explicit data
// rather than a formula, a range can be handed from one group to another by
// publishing a successor map at epoch+1 — the substrate of live
// rebalancing (see rebalance.go). A PlacementMap is immutable; mutation
// returns a successor.
type PlacementMap struct {
	epoch  uint64
	groups int
	// assignments are sorted by Start, contiguous, and cover the whole
	// hash space: assignments[0].Start == 0, each next Start is the
	// previous End+1, and the last End is ^uint64(0).
	assignments []Assignment
}

// UniformPlacement builds the epoch-1 map splitting the hash space into
// `groups` equal contiguous ranges, range i owned by group i — the seed
// placement NewCluster starts from.
func UniformPlacement(groups int) *PlacementMap {
	if groups < 1 {
		groups = 1
	}
	pm := &PlacementMap{epoch: 1, groups: groups}
	if groups == 1 {
		pm.assignments = []Assignment{{Range: Range{Start: 0, End: ^uint64(0)}, Group: 0}}
		return pm
	}
	step := ^uint64(0)/uint64(groups) + 1
	for g := 0; g < groups; g++ {
		start := uint64(g) * step
		end := ^uint64(0)
		if g < groups-1 {
			end = start + step - 1
		}
		pm.assignments = append(pm.assignments, Assignment{Range: Range{Start: start, End: end}, Group: g})
	}
	return pm
}

// Epoch returns the map's version. Epochs only ever increase; a cluster
// rejects installing a map whose epoch does not exceed the current one.
func (pm *PlacementMap) Epoch() uint64 { return pm.epoch }

// Groups returns the number of consensus groups the map routes across.
func (pm *PlacementMap) Groups() int { return pm.groups }

// Assignments returns a copy of the ordered range assignments.
func (pm *PlacementMap) Assignments() []Assignment {
	return append([]Assignment(nil), pm.assignments...)
}

// ShardFor maps a key to the group owning its hash.
func (pm *PlacementMap) ShardFor(key uint64) int {
	h := kvstore.KeyHash(key)
	i := sort.Search(len(pm.assignments), func(i int) bool { return pm.assignments[i].End >= h })
	return pm.assignments[i].Group
}

// OwnerOf returns the single group owning every hash of r, or an error when
// r is empty/inverted or spans an ownership boundary (a handoff moves a
// range out of exactly one source group).
func (pm *PlacementMap) OwnerOf(r Range) (int, error) {
	if r.Start > r.End {
		return 0, fmt.Errorf("shard: empty hash range [%d, %d]", r.Start, r.End)
	}
	owner := -1
	for _, a := range pm.assignments {
		if !a.Overlaps(r) {
			continue
		}
		if owner >= 0 && owner != a.Group {
			return 0, fmt.Errorf("shard: range [%#x, %#x] spans groups %d and %d", r.Start, r.End, owner, a.Group)
		}
		owner = a.Group
	}
	return owner, nil
}

// GroupRanges returns the ranges currently assigned to group g, in hash
// order.
func (pm *PlacementMap) GroupRanges(g int) []Range {
	var out []Range
	for _, a := range pm.assignments {
		if a.Group == g {
			out = append(out, a.Range)
		}
	}
	return out
}

// WithReassigned returns the successor map (epoch+1) in which the hash
// range r is owned by group dst. The range must be non-empty, lie within a
// single current owner, and dst must be a valid group; the result is
// canonical (adjacent same-group ranges merged), so two parties deriving
// the same reassignment compute the same digest.
func (pm *PlacementMap) WithReassigned(r Range, dst int) (*PlacementMap, error) {
	if r.Start > r.End {
		return nil, fmt.Errorf("shard: empty hash range [%d, %d]", r.Start, r.End)
	}
	if dst < 0 || dst >= pm.groups {
		return nil, fmt.Errorf("shard: destination group %d out of range (have %d groups)", dst, pm.groups)
	}
	src, err := pm.OwnerOf(r)
	if err != nil {
		return nil, err
	}
	if src == dst {
		return nil, fmt.Errorf("shard: range [%#x, %#x] already owned by group %d", r.Start, r.End, dst)
	}
	var split []Assignment
	for _, a := range pm.assignments {
		if !a.Overlaps(r) {
			split = append(split, a)
			continue
		}
		if a.Start < r.Start {
			split = append(split, Assignment{Range: Range{Start: a.Start, End: r.Start - 1}, Group: a.Group})
		}
		lo, hi := a.Start, a.End
		if r.Start > lo {
			lo = r.Start
		}
		if r.End < hi {
			hi = r.End
		}
		split = append(split, Assignment{Range: Range{Start: lo, End: hi}, Group: dst})
		if a.End > r.End {
			split = append(split, Assignment{Range: Range{Start: r.End + 1, End: a.End}, Group: a.Group})
		}
	}
	sort.Slice(split, func(i, j int) bool { return split[i].Start < split[j].Start })
	// Canonicalize: merge adjacent ranges with the same owner.
	merged := split[:1]
	for _, a := range split[1:] {
		last := &merged[len(merged)-1]
		if a.Group == last.Group {
			last.End = a.End
			continue
		}
		merged = append(merged, a)
	}
	next := &PlacementMap{epoch: pm.epoch + 1, groups: pm.groups,
		assignments: append([]Assignment(nil), merged...)}
	if err := next.validate(); err != nil {
		return nil, err
	}
	return next, nil
}

// Partition groups keys by owning shard, preserving each shard's input
// order. Iterate the result with SortedShards so the request issue order is
// deterministic.
func (pm *PlacementMap) Partition(keys []uint64) map[int][]uint64 {
	parts := make(map[int][]uint64)
	for _, k := range keys {
		s := pm.ShardFor(k)
		parts[s] = append(parts[s], k)
	}
	return parts
}

// SortedShards returns a partition's shard indices in ascending order —
// map iteration order is nondeterministic, and request issue order (and
// with it simulated timelines) must be reproducible across runs.
func SortedShards(parts map[int][]uint64) []int {
	out := make([]int, 0, len(parts))
	for s := range parts {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// validate checks the structural invariants.
func (pm *PlacementMap) validate() error {
	if pm.epoch == 0 {
		return fmt.Errorf("shard: placement epoch 0 is reserved")
	}
	if pm.groups < 1 {
		return fmt.Errorf("shard: placement needs at least one group")
	}
	if len(pm.assignments) == 0 {
		return fmt.Errorf("shard: placement has no assignments")
	}
	if pm.assignments[0].Start != 0 {
		return fmt.Errorf("shard: placement does not start at hash 0")
	}
	if pm.assignments[len(pm.assignments)-1].End != ^uint64(0) {
		return fmt.Errorf("shard: placement does not reach the top of the hash space")
	}
	for i, a := range pm.assignments {
		if a.Start > a.End {
			return fmt.Errorf("shard: assignment %d is empty", i)
		}
		if a.Group < 0 || a.Group >= pm.groups {
			return fmt.Errorf("shard: assignment %d names group %d of %d", i, a.Group, pm.groups)
		}
		if i > 0 && a.Start != pm.assignments[i-1].End+1 {
			return fmt.Errorf("shard: assignments %d..%d leave a gap or overlap", i-1, i)
		}
	}
	return nil
}

// placementMagic versions the wire form.
const placementMagic = "FTPL1"

// Encode serializes the map deterministically: magic, epoch, group count,
// then the ordered assignments. Equal maps encode to equal bytes, so the
// digest is stable across processes and releases.
func (pm *PlacementMap) Encode() []byte {
	buf := make([]byte, 0, len(placementMagic)+20+20*len(pm.assignments))
	buf = append(buf, placementMagic...)
	buf = binary.BigEndian.AppendUint64(buf, pm.epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(pm.groups))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(pm.assignments)))
	for _, a := range pm.assignments {
		buf = binary.BigEndian.AppendUint64(buf, a.Start)
		buf = binary.BigEndian.AppendUint64(buf, a.End)
		buf = binary.BigEndian.AppendUint32(buf, uint32(a.Group))
	}
	return buf
}

// DecodePlacement parses and validates an encoded map.
func DecodePlacement(b []byte) (*PlacementMap, error) {
	hdr := len(placementMagic)
	if len(b) < hdr+16 || string(b[:hdr]) != placementMagic {
		return nil, fmt.Errorf("shard: bad placement encoding header")
	}
	pm := &PlacementMap{
		epoch:  binary.BigEndian.Uint64(b[hdr : hdr+8]),
		groups: int(binary.BigEndian.Uint32(b[hdr+8 : hdr+12])),
	}
	n := int(binary.BigEndian.Uint32(b[hdr+12 : hdr+16]))
	rest := b[hdr+16:]
	if len(rest) != 20*n {
		return nil, fmt.Errorf("shard: placement encoding length mismatch")
	}
	for i := 0; i < n; i++ {
		pm.assignments = append(pm.assignments, Assignment{
			Range: Range{Start: binary.BigEndian.Uint64(rest[0:8]), End: binary.BigEndian.Uint64(rest[8:16])},
			Group: int(binary.BigEndian.Uint32(rest[16:20])),
		})
		rest = rest[20:]
	}
	if err := pm.validate(); err != nil {
		return nil, err
	}
	return pm, nil
}

// Digest returns the map's identity: the hash of its canonical encoding.
// The rebalance commit point binds it inside the attested placement
// decision, so a published epoch flip commits to exactly one ownership
// assignment.
func (pm *PlacementMap) Digest() types.Digest {
	return crypto.HashConcat(pm.Encode())
}
