package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"flexitrust/internal/kvstore"
	"flexitrust/internal/obs"
	"flexitrust/internal/txn"
)

// Live rebalancing: moving one hash range from its owning group to another
// while both keep serving traffic. A handoff is a two-phase decision over
// the transaction layer's machinery — same id space, same decision log,
// same recovery story:
//
//	prepare   freeze+export the range on the source (one consensus op whose
//	          deterministic result is the range's written records), then
//	          stage the export on the destination in install chunks, each
//	          through the destination's own consensus (replicated before
//	          anything flips).
//	decide    ONE attested counter access binding
//	          H(handoff id ‖ new epoch ‖ new placement digest) — the
//	          paper's one-access-per-consensus property applied to
//	          reconfiguration — published to the attestation log. The log
//	          is first-wins per id AND per epoch, so no two groups can both
//	          claim a range even if a Byzantine orchestrator mints
//	          attestations for conflicting maps.
//	drive     the decision reaches both groups as the ordinary commit/abort
//	          op: the source deletes + releases the range (subsequent
//	          operations answer WrongShard, the stale-epoch retry signal),
//	          the destination applies its staged records and starts owning.
//
// Writes to the range are refused (RangeMigrating) only between freeze and
// flip — the availability dip the FigRebalance experiment measures — and
// reads are served by the source throughout. Sessions on the old epoch
// retry transparently through the refreshed placement.

// ErrRangeBusy marks a handoff refused because its range is already
// claimed — frozen by a concurrent handoff, under an undecided inbound
// stage, or released since the proposal was derived. The range's fate is
// another handoff's to decide; retry after it settles.
var ErrRangeBusy = errors.New("shard: range claimed by a concurrent handoff")

// RebalanceOptions tunes one handoff (crash injection mirrors txn.Options;
// the boundaries map onto the same txn.Phase values).
type RebalanceOptions struct {
	// CrashAt stops the orchestrator at the given boundary: PhaseVoted is
	// after freeze+install, PhaseAttested after minting the decision,
	// PhasePublished after publication (before the placement installs
	// cluster-side or any group is told).
	CrashAt txn.Phase
	// DriveOnly, when non-nil, restricts the drive fan-out to these groups
	// — a crash mid-drive that told one side but not the other.
	DriveOnly map[int]bool
}

// RebalanceResult reports one handoff's outcome.
type RebalanceResult struct {
	HandoffID uint64
	From, To  int
	// Epoch is the epoch the proposed placement carries.
	Epoch     uint64
	Committed bool
	// Moved is the number of written records exported to the destination.
	Moved int
	// Chunks is the number of install operations the export needed.
	Chunks int
	// Placement is the proposed successor map (installed iff Committed).
	Placement *PlacementMap
}

// Rebalance hands the hash range r from its current owner to group `to`:
// the live-migration entry point.
func (s *Session) Rebalance(ctx context.Context, r Range, to int) (*RebalanceResult, error) {
	return s.RebalanceWithOptions(ctx, r, to, RebalanceOptions{})
}

// RebalanceWithOptions is Rebalance with crash injection (recovery tests).
// On a crash the partial result carries the handoff id; ResolveTxn settles
// it from the log exactly like an in-doubt transaction.
func (s *Session) RebalanceWithOptions(ctx context.Context, r Range, to int, opts RebalanceOptions) (*RebalanceResult, error) {
	pm := s.refreshPlacement()
	next, err := pm.WithReassigned(r, to)
	if err != nil {
		return nil, err
	}
	src, err := pm.OwnerOf(r)
	if err != nil {
		return nil, err
	}
	hid := s.c.newTxID()
	s.c.registerProposal(hid, next)
	res := &RebalanceResult{HandoffID: hid, From: src, To: to, Epoch: next.Epoch(), Placement: next}

	span := s.c.obs.Tracer().StartTrace("placement", "rebalance")
	defer span.End()
	span.Annotate("handoff %d: range %v from group %d to group %d (epoch %d)", hid, r, src, to, next.Epoch())

	// Prepare, source side: freeze the range and collect its export. The
	// freeze opens the write-unavailability window the MRebalanceWindow
	// histogram measures; it closes at the routing flip.
	frozen := time.Now()
	freezeSpan := span.Child("placement", "freeze")
	raw, err := s.submitShard(ctx, src, kvstore.EncodeRangeFreeze(hid, r))
	freezeSpan.End()
	if err != nil {
		return res, s.abortHandoff(ctx, res, fmt.Errorf("freeze on group %d: %w", src, err))
	}
	recs, ok := kvstore.DecodeRangeExport(raw)
	if !ok {
		cause := fmt.Errorf("freeze on group %d refused: %s", src, raw)
		switch string(raw) {
		case kvstore.TxnConflict, kvstore.RangeMigrating, kvstore.WrongShard:
			cause = fmt.Errorf("freeze on group %d refused (%s): %w", src, raw, ErrRangeBusy)
		}
		return res, s.abortHandoff(ctx, res, cause)
	}
	res.Moved = len(recs)
	freezeSpan.Annotate("%d records exported", len(recs))

	// Prepare, destination side: stage the export chunk by chunk through
	// the destination's consensus.
	chunks := kvstore.ChunkRangeRecords(recs)
	res.Chunks = len(chunks)
	installSpan := span.Child("placement", "install")
	installSpan.Annotate("%d chunks to group %d", len(chunks), to)
	for i, chunk := range chunks {
		op, err := kvstore.EncodeRangeInstall(hid, r, uint32(i), chunk)
		if err != nil {
			installSpan.End()
			return res, s.abortHandoff(ctx, res, err)
		}
		iraw, err := s.submitShard(ctx, to, op)
		if err != nil {
			installSpan.End()
			return res, s.abortHandoff(ctx, res, fmt.Errorf("install chunk %d on group %d: %w", i, to, err))
		}
		if string(iraw) != kvstore.RangeStaged {
			installSpan.End()
			return res, s.abortHandoff(ctx, res, fmt.Errorf("install chunk %d on group %d refused: %s", i, to, iraw))
		}
	}
	installSpan.End()
	if opts.CrashAt == txn.PhaseVoted {
		return res, fmt.Errorf("%w at %v (handoff %d)", txn.ErrCoordinatorCrashed, txn.PhaseVoted, hid)
	}

	// Commit point: one attested counter access binds the new placement.
	decideSpan := span.Child("placement", "decide")
	att, err := s.c.arbiter.DecidePlacement(hid, next.Epoch(), next.Digest())
	if err != nil {
		decideSpan.End()
		return res, fmt.Errorf("handoff %d: arbiter: %w", hid, err)
	}
	decideSpan.Annotate("attested counter value %d binds epoch %d", att.Value, next.Epoch())
	if opts.CrashAt == txn.PhaseAttested {
		decideSpan.End()
		return res, fmt.Errorf("%w at %v (handoff %d)", txn.ErrCoordinatorCrashed, txn.PhaseAttested, hid)
	}
	d, err := s.c.txnLog.Publish(txn.Decision{
		TxID: hid, Commit: true, Epoch: next.Epoch(), Placement: next.Digest(), Att: att,
	})
	decideSpan.End()
	if errors.Is(err, txn.ErrEpochClaimed) {
		// Another handoff activated this epoch first: our flip loses whole.
		return res, s.abortHandoff(ctx, res, err)
	}
	if err != nil {
		return res, fmt.Errorf("handoff %d: publish: %w", hid, err)
	}
	// First-wins: recovery may have published an abort before us.
	res.Committed = d.Commit
	if opts.CrashAt == txn.PhasePublished {
		return res, fmt.Errorf("%w at %v (handoff %d)", txn.ErrCoordinatorCrashed, txn.PhasePublished, hid)
	}
	if res.Committed {
		// Activate routing before the drive: sessions hitting WrongShard on
		// the source must find the successor epoch to retry through.
		_ = s.c.installPlacement(next)
		// The flip reopens the range for writes: the window closes here.
		s.c.obs.Metrics().Histogram(obs.MRebalanceWindow).ObserveDuration(time.Since(frozen))
		span.Annotate("committed: epoch %d active", next.Epoch())
	}

	// Drive the decision to both groups.
	driveSpan := span.Child("placement", "drive")
	err = s.driveHandoff(ctx, hid, res.Committed, src, to, opts.DriveOnly)
	driveSpan.End()
	if err != nil {
		return res, err
	}
	if opts.DriveOnly != nil {
		return res, nil // injected partial drive: the id stays in flight
	}
	s.c.settleHandoff(hid)
	s.refreshPlacement()
	if !res.Committed {
		return res, fmt.Errorf("handoff %d: %w", hid, txn.ErrAborted)
	}
	return res, nil
}

// abortHandoff settles a handoff that cannot commit: mint the abort, let
// publication decide the race, drive the outcome to both sides, and report
// the cause.
func (s *Session) abortHandoff(ctx context.Context, res *RebalanceResult, cause error) error {
	att, err := s.c.arbiter.Decide(res.HandoffID, false)
	if err != nil {
		return fmt.Errorf("handoff %d: abort arbiter: %w (cause: %v)", res.HandoffID, err, cause)
	}
	d, err := s.c.txnLog.Publish(txn.Decision{TxID: res.HandoffID, Commit: false, Att: att})
	if err != nil {
		return fmt.Errorf("handoff %d: abort publish: %w (cause: %v)", res.HandoffID, err, cause)
	}
	res.Committed = d.Commit // first-wins: a racing commit governs
	if res.Committed {
		if pm := s.c.proposal(res.HandoffID); pm != nil {
			_ = s.c.installPlacement(pm)
		}
	}
	if err := s.driveHandoff(ctx, res.HandoffID, res.Committed, res.From, res.To, nil); err != nil {
		return err
	}
	s.c.settleHandoff(res.HandoffID)
	s.refreshPlacement()
	return fmt.Errorf("handoff %d aborted: %w", res.HandoffID, cause)
}

// driveHandoff fans the decision out to the source and destination groups
// (ascending, restricted by `only` when non-nil).
func (s *Session) driveHandoff(ctx context.Context, hid uint64, commit bool, src, dst int, only map[int]bool) error {
	groups := []int{src, dst}
	if src > dst {
		groups = []int{dst, src}
	}
	var first error
	for _, g := range groups {
		if only != nil && !only[g] {
			continue
		}
		if _, err := s.submitShard(ctx, g, kvstore.EncodeTxnDecision(commit, hid, 0)); err != nil && first == nil {
			first = fmt.Errorf("handoff %d: decision on group %d: %w", hid, g, err)
		}
	}
	return first
}
