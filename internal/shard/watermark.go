package shard

import (
	"sync"

	"flexitrust/internal/types"
)

// Watermark tracks one shard's committed consensus sequence number as
// observed by this process's clients. It only moves forward; readers use it
// as a fence: a read that executes at sequence ≥ the fence is guaranteed to
// reflect every write this process saw commit on that shard before the fence
// was taken (read-committed, monotonic within the shard).
type Watermark struct {
	mu  sync.Mutex
	seq types.SeqNum
}

// Advance raises the watermark to seq if it is higher.
func (w *Watermark) Advance(seq types.SeqNum) {
	w.mu.Lock()
	if seq > w.seq {
		w.seq = seq
	}
	w.mu.Unlock()
}

// Load returns the current watermark.
func (w *Watermark) Load() types.SeqNum {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// ShardVector is a per-shard vector of consensus sequence numbers — the
// version at which each shard was observed. Cross-shard multi-gets return
// one: entry s is the highest sequence number among that operation's reads
// on shard s (or the fence value if the operation read nothing there).
type ShardVector []types.SeqNum

// Covers reports whether every entry of v is at least the corresponding
// entry of fence — i.e. whether the reads described by v are no older than
// the fence snapshot.
func (v ShardVector) Covers(fence ShardVector) bool {
	if len(v) != len(fence) {
		return false
	}
	for i := range v {
		if v[i] < fence[i] {
			return false
		}
	}
	return true
}
