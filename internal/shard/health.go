package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flexitrust/internal/obs"
	"flexitrust/internal/types"
)

// Per-shard health: every group runs its own view-change machinery, but a
// sharded deployment needs a cluster-level view of it — which groups are
// committing, which are electing a new primary, and which have been wedged
// long enough that sessions should stop waiting on them (and an orchestrator
// should consider evacuating their ranges, see failover.go).
//
// The HealthMonitor samples each group's replicas through the runtime's
// progress probe (runtime.Cluster.Probe → engine.Status, read on each
// replica's event goroutine) and classifies every group:
//
//	Healthy       a commit quorum of replicas is up, the primary answers,
//	              no view change is in flight, and in-flight operations are
//	              making progress.
//	ViewChanging  the primary is down or a replica reports an in-progress
//	              view change — the group is expected to recover by itself;
//	              sessions back off briefly instead of submitting blind.
//	Stalled       the group cannot currently commit (fewer than n−f
//	              replicas up), or it has been degraded / not progressing
//	              for at least StallAfter — sessions fail fast with
//	              ErrShardDegraded and the failover orchestrator may
//	              evacuate its ranges.
//
// Classification is advisory: it gates routing and orchestration policy,
// never safety. Safety stays with the placement layer's attested epoch flips
// (a mis-classified group loses nothing — at worst an evacuation is
// attempted that the first-wins log would serialize anyway).

// ErrShardDegraded marks an operation refused fast because its target group
// is classified Stalled. Callers can errors.Is against it and either retry
// later, read other shards, or trigger failover orchestration.
var ErrShardDegraded = errors.New("shard: group degraded")

// ErrUnroutable marks an operation whose placement never converged: the
// session exhausted its routing retries with the store still answering
// WrongShard/RangeMigrating through every refreshed epoch.
var ErrUnroutable = errors.New("shard: placement never converged")

// GroupState classifies one group's health.
type GroupState int

// The health states, in increasing order of degradation.
const (
	// GroupHealthy: committing normally.
	GroupHealthy GroupState = iota
	// GroupViewChanging: electing a new primary; expected to recover.
	GroupViewChanging
	// GroupStalled: unable to commit, or degraded beyond StallAfter.
	GroupStalled
)

// String implements fmt.Stringer.
func (s GroupState) String() string {
	switch s {
	case GroupHealthy:
		return "healthy"
	case GroupViewChanging:
		return "view-changing"
	case GroupStalled:
		return "stalled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// GroupHealth is one group's classified health sample.
type GroupHealth struct {
	Group int
	State GroupState
	// View is the highest view any up replica reports; Primary is that
	// view's leader and PrimaryUp whether it answered the probe.
	View      types.View
	Primary   types.ReplicaID
	PrimaryUp bool
	// ReplicasUp counts replicas that answered the probe (of N).
	ReplicasUp int
	// Watermark is the group's committed-sequence watermark; ViewChanges
	// the number of views installed after genesis (churn signal).
	Watermark   types.SeqNum
	ViewChanges uint64
	// StalledFor is how long the group has been degraded or without
	// progress under demand (zero when Healthy).
	StalledFor time.Duration
}

// HealthConfig tunes the monitor.
type HealthConfig struct {
	// StallAfter is the failover threshold: a group degraded (or not
	// progressing while operations are in flight) for at least this long is
	// classified Stalled. Default: 4× the group's ViewChangeTimeout — long
	// enough for an ordinary view change plus its escalation round.
	StallAfter time.Duration
	// ProbeEvery rate-limits sampling: a Check within ProbeEvery of the
	// last sample answers from cache (default 2ms). Every session on the
	// hot path consults the monitor, so probes must not be per-operation.
	ProbeEvery time.Duration
}

// HealthMonitor tracks per-group {view, primary, stalled-since, commit
// watermark} and classifies groups. One monitor serves the whole cluster;
// it is safe for concurrent use.
type HealthMonitor struct {
	c   *Cluster
	cfg HealthConfig

	// probeMu serializes actual probe sweeps (and guards prog); mu guards
	// only the published cache, so readers on the routing hot path never
	// wait behind a probe's event-goroutine round trips.
	probeMu sync.Mutex
	prog    []groupProgress

	mu        sync.Mutex
	last      []GroupHealth
	sampledAt time.Time
}

// groupProgress is the monitor's per-group memory between samples.
type groupProgress struct {
	committed     uint64    // client-observed commits at last advance
	lastAdvance   time.Time // when commits last advanced (or demand ceased)
	degradedSince time.Time // when the group left Healthy (zero if healthy)
}

// newHealthMonitor wires the monitor; defaults derive from the group
// template's view-change timeout.
func newHealthMonitor(c *Cluster, cfg HealthConfig, vcTimeout time.Duration) *HealthMonitor {
	if cfg.StallAfter <= 0 {
		if vcTimeout <= 0 {
			vcTimeout = 500 * time.Millisecond
		}
		cfg.StallAfter = 4 * vcTimeout
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 2 * time.Millisecond
	}
	now := time.Now()
	m := &HealthMonitor{c: c, cfg: cfg, prog: make([]groupProgress, len(c.groups))}
	for i := range m.prog {
		m.prog[i].lastAdvance = now
	}
	return m
}

// StallAfter returns the monitor's failover threshold.
func (m *HealthMonitor) StallAfter() time.Duration { return m.cfg.StallAfter }

// Check returns group g's latest classification, sampling if the cache is
// older than ProbeEvery. It is the per-operation routing gate, so the
// cached path is one mutex acquisition and no allocation.
func (m *HealthMonitor) Check(g int) GroupHealth {
	m.mu.Lock()
	if m.last != nil && time.Since(m.sampledAt) < m.cfg.ProbeEvery {
		h := m.last[g]
		m.mu.Unlock()
		return h
	}
	m.mu.Unlock()
	return m.sample(false)[g]
}

// Sample probes every group now and returns the classifications.
func (m *HealthMonitor) Sample() []GroupHealth { return m.sample(true) }

// cached returns a copy of the published cache when it is fresh enough.
func (m *HealthMonitor) cached(force bool) []GroupHealth {
	if force {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.last == nil || time.Since(m.sampledAt) >= m.cfg.ProbeEvery {
		return nil
	}
	return append([]GroupHealth(nil), m.last...)
}

// sample returns per-group health, probing unless a cached sample is
// fresh. Probes run outside the cache lock: concurrent callers queue on
// probeMu (where the re-check usually answers them from the sweep that
// just finished) instead of convoying every routing decision behind
// event-goroutine round trips.
func (m *HealthMonitor) sample(force bool) []GroupHealth {
	if out := m.cached(force); out != nil {
		return out
	}
	m.probeMu.Lock()
	defer m.probeMu.Unlock()
	if out := m.cached(force); out != nil {
		return out
	}
	now := time.Now()
	out := make([]GroupHealth, len(m.c.groups))
	for gi, g := range m.c.groups {
		out[gi] = m.classify(gi, g, now)
	}
	m.mu.Lock()
	transitions := m.diffStates(out)
	m.last = append(m.last[:0], out...)
	m.sampledAt = now
	m.mu.Unlock()
	for _, t := range transitions {
		// The detail format is recognized by the rules engine's stall rule,
		// so it goes through the obs helper rather than free-form text.
		m.c.obs.Journal().Record(obs.EventHealthTransition, t.group,
			"%s", obs.HealthTransitionDetail(t.from, t.to))
		m.c.obs.Metrics().Counter(obs.GroupLabel(obs.MHealthTransitions, t.group)).Inc()
	}
	return out
}

// stateTransition is one group's health flip between consecutive samples.
type stateTransition struct {
	group    int
	from, to GroupState
}

// diffStates compares a fresh sample against the published cache (caller
// holds mu). A group's very first sample counts as a transition only when
// it is already degraded — booting Healthy is the expected baseline.
func (m *HealthMonitor) diffStates(out []GroupHealth) []stateTransition {
	var ts []stateTransition
	for gi := range out {
		prev := GroupHealthy
		if gi < len(m.last) {
			prev = m.last[gi].State
		}
		if out[gi].State != prev {
			ts = append(ts, stateTransition{group: gi, from: prev, to: out[gi].State})
		}
	}
	return ts
}

// classify probes one group and folds the sample into its progress memory.
func (m *HealthMonitor) classify(gi int, g *Group, now time.Time) GroupHealth {
	rt := g.Runtime()
	n, f := rt.N(), rt.F()
	h := GroupHealth{Group: gi, Watermark: g.Watermark()}
	probes := rt.Probe()
	inVC := false
	for i := range probes {
		p := &probes[i]
		if !p.Up {
			continue
		}
		h.ReplicasUp++
		if p.Status.View >= h.View {
			h.View = p.Status.View
		}
		if p.Status.ViewChanges > h.ViewChanges {
			h.ViewChanges = p.Status.ViewChanges
		}
		inVC = inVC || p.Status.InViewChange
	}
	h.Primary = types.Primary(h.View, n)
	if int(h.Primary) < len(probes) {
		h.PrimaryUp = probes[h.Primary].Up
	}

	// Progress: commits advancing — or nothing in flight — resets the
	// stall clock; demand without progress lets it run.
	pr := &m.prog[gi]
	committed := g.committedOps()
	if committed > pr.committed || g.inflightOps() == 0 {
		pr.committed = committed
		pr.lastAdvance = now
	}
	noProgress := now.Sub(pr.lastAdvance)

	// Base state, then escalation: a group degraded (view-changing or
	// progress-less under demand) for StallAfter is Stalled. Recovery is
	// automatic — the next healthy sample resets both clocks.
	switch {
	case h.ReplicasUp < n-f:
		h.State = GroupStalled // cannot commit until replicas return
	case inVC || !h.PrimaryUp:
		h.State = GroupViewChanging
	default:
		h.State = GroupHealthy
	}
	if h.State == GroupHealthy && noProgress < m.cfg.StallAfter {
		pr.degradedSince = time.Time{}
		return h
	}
	if pr.degradedSince.IsZero() {
		pr.degradedSince = now
	}
	h.StalledFor = now.Sub(pr.degradedSince)
	if sf := noProgress; sf > h.StalledFor {
		h.StalledFor = sf
	}
	if h.StalledFor >= m.cfg.StallAfter {
		h.State = GroupStalled
	}
	return h
}
