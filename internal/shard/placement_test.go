package shard

import (
	"fmt"
	"testing"
)

// TestPlacementDeterministic checks key→shard assignment is a pure function
// of the map: two uniform maps agree on every key, in range.
func TestPlacementDeterministic(t *testing.T) {
	a, b := UniformPlacement(8), UniformPlacement(8)
	for key := uint64(0); key < 10_000; key++ {
		sa, sb := a.ShardFor(key), b.ShardFor(key)
		if sa != sb {
			t.Fatalf("key %d: assignments differ (%d vs %d)", key, sa, sb)
		}
		if sa < 0 || sa >= 8 {
			t.Fatalf("key %d: shard %d out of range", key, sa)
		}
	}
}

// TestPlacementUniformDistribution bounds the chi-square statistic of the
// uniform map's assignment of a dense integer keyspace (the YCSB shape) —
// equal hash ranges over KeyHash must spread keys evenly.
func TestPlacementUniformDistribution(t *testing.T) {
	const keys = 100_000
	for _, shards := range []int{2, 3, 4, 8, 16} {
		pm := UniformPlacement(shards)
		counts := make([]int, shards)
		for key := uint64(0); key < keys; key++ {
			counts[pm.ShardFor(key)]++
		}
		expected := float64(keys) / float64(shards)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 3(S-1)+3 is several times the chi-square mean (S-1), with flat
		// slack so low-dof configurations (S=2 has one degree of freedom)
		// don't flag statistically unremarkable deviations; any genuinely
		// skewed split still fails by an order of magnitude. Deterministic,
		// so this never flakes.
		if bound := 3*float64(shards-1) + 3; chi2 > bound {
			t.Fatalf("S=%d: chi2=%.1f exceeds %.1f (counts %v)", shards, chi2, bound, counts)
		}
		t.Logf("S=%-3d chi2=%.2f", shards, chi2)
	}
}

// TestPlacementSingleShard: the degenerate one-group map owns the whole
// space at every key, and reassignment out of it is impossible.
func TestPlacementSingleShard(t *testing.T) {
	pm := UniformPlacement(1)
	if pm.Groups() != 1 || pm.Epoch() != 1 {
		t.Fatalf("unexpected map: groups=%d epoch=%d", pm.Groups(), pm.Epoch())
	}
	for _, key := range []uint64{0, 1, 42, ^uint64(0)} {
		if s := pm.ShardFor(key); s != 0 {
			t.Fatalf("key %d on shard %d", key, s)
		}
	}
	rs := pm.GroupRanges(0)
	if len(rs) != 1 || rs[0].Start != 0 || rs[0].End != ^uint64(0) {
		t.Fatalf("group 0 ranges = %v", rs)
	}
	if _, err := pm.WithReassigned(rs[0], 1); err == nil {
		t.Fatal("reassignment to a nonexistent group accepted")
	}
	if _, err := pm.WithReassigned(rs[0], 0); err == nil {
		t.Fatal("no-op reassignment to the same owner accepted")
	}
}

// TestPlacementEmptyRangeRejected: an inverted (empty) range can neither be
// reassigned nor owned.
func TestPlacementEmptyRangeRejected(t *testing.T) {
	pm := UniformPlacement(4)
	empty := Range{Start: 10, End: 9}
	if _, err := pm.WithReassigned(empty, 1); err == nil {
		t.Fatal("empty range reassignment accepted")
	}
	if _, err := pm.OwnerOf(empty); err == nil {
		t.Fatal("empty range ownership resolved")
	}
}

// TestPlacementReassignSpanningOwnersRejected: a range crossing an
// ownership boundary has no single source and cannot be handed off whole.
func TestPlacementReassignSpanningOwnersRejected(t *testing.T) {
	pm := UniformPlacement(4)
	r0 := pm.GroupRanges(0)[0]
	spanning := Range{Start: r0.End, End: r0.End + 1}
	if _, err := pm.OwnerOf(spanning); err == nil {
		t.Fatal("range spanning two owners resolved to one")
	}
	if _, err := pm.WithReassigned(spanning, 3); err == nil {
		t.Fatal("spanning reassignment accepted")
	}
}

// TestPlacementReassignment: a sub-range handoff bumps the epoch, moves
// exactly the sub-range, keeps the map canonical (contiguous, covering,
// merged), and leaves the original untouched (immutability).
func TestPlacementReassignment(t *testing.T) {
	pm := UniformPlacement(4)
	r0 := pm.GroupRanges(0)[0]
	sub := Range{Start: r0.Start, End: r0.Start + (r0.End-r0.Start)/2}
	next, err := pm.WithReassigned(sub, 2)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != pm.Epoch()+1 {
		t.Fatalf("epoch %d, want %d", next.Epoch(), pm.Epoch()+1)
	}
	if err := next.validate(); err != nil {
		t.Fatal(err)
	}
	if owner, err := next.OwnerOf(sub); err != nil || owner != 2 {
		t.Fatalf("sub-range owner = %d, %v", owner, err)
	}
	rest := Range{Start: sub.End + 1, End: r0.End}
	if owner, err := next.OwnerOf(rest); err != nil || owner != 0 {
		t.Fatalf("remainder owner = %d, %v", owner, err)
	}
	if owner, err := pm.OwnerOf(sub); err != nil || owner != 0 {
		t.Fatalf("original map mutated: owner = %d, %v", owner, err)
	}
	// Round-trip: moving it back merges the split away and the assignment
	// structure returns to the uniform shape (epoch keeps climbing).
	back, err := next.WithReassigned(sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch() != pm.Epoch()+2 {
		t.Fatalf("epoch %d after round trip", back.Epoch())
	}
	if len(back.Assignments()) != len(pm.Assignments()) {
		t.Fatalf("round trip left %d assignments, want %d (canonical merge failed)",
			len(back.Assignments()), len(pm.Assignments()))
	}
}

// TestPlacementSerializationRoundTrip: Encode/Decode are inverse, the
// digest is a pure function of content, and the epoch-1 uniform maps have
// stable digests across runs and releases (a digest change would silently
// split routing between versions, so it must be a loud test failure).
func TestPlacementSerializationRoundTrip(t *testing.T) {
	pm := UniformPlacement(4)
	sub := Range{Start: 0, End: 1<<61 - 1}
	next, err := pm.WithReassigned(sub, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*PlacementMap{UniformPlacement(1), pm, next} {
		dec, err := DecodePlacement(m.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if dec.Epoch() != m.Epoch() || dec.Groups() != m.Groups() {
			t.Fatalf("round trip changed header: %d/%d vs %d/%d", dec.Epoch(), dec.Groups(), m.Epoch(), m.Groups())
		}
		if fmt.Sprintf("%v", dec.Assignments()) != fmt.Sprintf("%v", m.Assignments()) {
			t.Fatalf("round trip changed assignments")
		}
		if dec.Digest() != m.Digest() {
			t.Fatal("round trip changed digest")
		}
	}
	// Digest stability: equal content ⇒ equal digest, different content ⇒
	// different digest.
	if UniformPlacement(4).Digest() != pm.Digest() {
		t.Fatal("equal maps digest differently")
	}
	if next.Digest() == pm.Digest() {
		t.Fatal("different maps share a digest")
	}
	// Golden digest: pins the canonical encoding. If this fails you changed
	// the wire form — bump placementMagic and treat it as a migration.
	const golden = "132338a24f043ec0621c5b651bf597e59fdb7a2323ff3e15f0522f528a4aec87"
	d4 := UniformPlacement(4).Digest()
	if got := fmt.Sprintf("%x", d4[:]); got != golden {
		t.Fatalf("UniformPlacement(4) digest %s, golden %s", got, golden)
	}
	// Corrupt encodings are rejected.
	if _, err := DecodePlacement([]byte("junk")); err == nil {
		t.Fatal("junk decoded")
	}
	enc := pm.Encode()
	if _, err := DecodePlacement(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated encoding decoded")
	}
}

// TestPlacementPartitionSorted: Partition covers all keys on their owning
// shards preserving input order, and SortedShards iterates deterministically.
func TestPlacementPartitionSorted(t *testing.T) {
	pm := UniformPlacement(4)
	keys := []uint64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	parts := pm.Partition(keys)
	total := 0
	for s, ks := range parts {
		total += len(ks)
		for _, k := range ks {
			if pm.ShardFor(k) != s {
				t.Fatalf("key %d placed on shard %d, ShardFor says %d", k, s, pm.ShardFor(k))
			}
		}
		// Per-shard order preservation: a subsequence of the input.
		idx := 0
		for _, k := range ks {
			for idx < len(keys) && keys[idx] != k {
				idx++
			}
			if idx == len(keys) {
				t.Fatalf("shard %d list %v is not an ordered subsequence of input", s, ks)
			}
			idx++
		}
	}
	if total != len(keys) {
		t.Fatalf("partition covers %d of %d keys", total, len(keys))
	}
	sorted := SortedShards(parts)
	if len(sorted) != len(parts) {
		t.Fatalf("SortedShards returned %d of %d shards", len(sorted), len(parts))
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatalf("shards not ascending: %v", sorted)
		}
	}
}
