package shard

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexitrust/internal/kvstore"
	"flexitrust/internal/obs"
	"flexitrust/internal/types"
)

// leaseConfig is testConfig with the leased linearizable read fast path on
// and a real observer attached so tests can assert which path served.
func leaseConfig(shards int) Config {
	cfg := testConfig(shards)
	cfg.Group.Engine.ReadLease = true
	cfg.Obs = obs.New(obs.Config{SampleRate: -1})
	return cfg
}

// leaseFailoverConfig is leaseConfig tuned like failoverConfig: snappy view
// changes and a health monitor fast enough for tests to observe transitions.
func leaseFailoverConfig(shards int, stallAfter time.Duration) Config {
	cfg := leaseConfig(shards)
	cfg.Group.Engine.ViewChangeTimeout = 150 * time.Millisecond
	cfg.Group.ClientRetry = 200 * time.Millisecond
	cfg.Group.Clients = []types.ClientID{1, 2, 3, 4}
	cfg.Health = HealthConfig{StallAfter: stallAfter, ProbeEvery: time.Millisecond}
	return cfg
}

// TestLeasedGetFastPath: with the lease on, repeated single-key Gets are
// answered by the owning primary without consensus — the lease-read counter
// advances, the leased latency histogram fills, and the granting primary's
// tracker reports an active lease. Values stay correct throughout.
func TestLeasedGetFastPath(t *testing.T) {
	c, err := NewCluster(leaseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	sess := c.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	want := make(map[uint64][]byte)
	var keys []uint64
	for s := 0; s < 2; s++ {
		for i, k := range freshKeysOnShard(c.Placement(), s, 3, 50_000) {
			v := []byte(fmt.Sprintf("lease-s%d-%d", s, i))
			if err := sess.Insert(ctx, k, v); err != nil {
				t.Fatalf("insert: %v", err)
			}
			want[k] = v
			keys = append(keys, k)
		}
	}
	for round := 0; round < 5; round++ {
		for _, k := range keys {
			got, err := sess.Get(ctx, k)
			if err != nil {
				t.Fatalf("get key %d: %v", k, err)
			}
			if !bytes.Equal(got, want[k]) {
				t.Fatalf("get key %d = %q, want %q", k, got, want[k])
			}
		}
	}

	m := c.obs.Metrics()
	reads := m.Counter(obs.MLeaseReads).Value()
	if reads == 0 {
		t.Fatal("no reads served on the leased fast path")
	}
	if n := m.Histogram(obs.MLeaseReadLatency).Count(); n == 0 {
		t.Fatal("leased read latency histogram empty")
	}
	t.Logf("leased reads served: %d (latency samples %d)",
		reads, m.Histogram(obs.MLeaseReadLatency).Count())
	for g := 0; g < 2; g++ {
		if epoch, active := c.Group(g).Runtime().Node(0).LeaseState(); !active || epoch == 0 {
			t.Fatalf("group %d primary lease tracker epoch=%d active=%v, want active grant", g, epoch, active)
		}
	}
	// A missing key resolves through the same fast path without error.
	miss := freshKeysOnShard(c.Placement(), 0, 10, 50_000)[9]
	got, err := sess.Get(ctx, miss)
	if err != nil || string(got) != "NOTFOUND" {
		t.Fatalf("get missing key = %q, %v; want NOTFOUND", got, err)
	}
}

// TestMultiGetLeasedSingleShardShortCircuit: a MultiGet whose keys all live
// on one healthy leased shard must skip the cross-shard fan-out machinery —
// the fan-out histogram records exactly one observation of 1 — while a
// cross-shard MultiGet still takes the general path (fan-out 2). Regression
// test for the single-shard case allocating full fan-out state.
func TestMultiGetLeasedSingleShardShortCircuit(t *testing.T) {
	c, err := NewCluster(leaseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	sess := c.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	want := make(map[uint64][]byte)
	single := freshKeysOnShard(c.Placement(), 0, 5, 50_000)
	for i, k := range single {
		v := []byte(fmt.Sprintf("one-shard-%d", i))
		if err := sess.Insert(ctx, k, v); err != nil {
			t.Fatalf("insert: %v", err)
		}
		want[k] = v
	}
	other := freshKeysOnShard(c.Placement(), 1, 1, 50_000)[0]
	if err := sess.Insert(ctx, other, []byte("other-shard")); err != nil {
		t.Fatalf("insert: %v", err)
	}
	want[other] = []byte("other-shard")

	readsBefore := c.obs.Metrics().Counter(obs.MLeaseReads).Value()
	vals, vers, err := sess.MultiGet(ctx, single)
	if err != nil {
		t.Fatalf("single-shard multiget: %v", err)
	}
	for _, k := range single {
		if !bytes.Equal(vals[k].Value, want[k]) || !vals[k].Found {
			t.Fatalf("multiget key %d = %+v, want %q", k, vals[k], want[k])
		}
	}
	if vers[0] == 0 {
		t.Fatal("single-shard multiget returned no version for the owning shard")
	}
	fan := c.obs.Metrics().Histogram(obs.MMultiGetFanout)
	if n, max := fan.Count(), fan.Max(); n != 1 || max != 1 {
		t.Fatalf("single-shard multiget fan-out count=%d max=%v, want one observation of 1", n, max)
	}
	if got := c.obs.Metrics().Counter(obs.MLeaseReads).Value(); got < readsBefore+uint64(len(single)) {
		t.Fatalf("leased reads %d -> %d, want +%d (short-circuit must use the fast path)",
			readsBefore, got, len(single))
	}

	// Cross-shard call: the short-circuit must stand aside and the general
	// fan-out path must still produce correct values.
	mixed := append(append([]uint64{}, single...), other)
	vals, _, err = sess.MultiGet(ctx, mixed)
	if err != nil {
		t.Fatalf("cross-shard multiget: %v", err)
	}
	for _, k := range mixed {
		if !bytes.Equal(vals[k].Value, want[k]) {
			t.Fatalf("cross-shard multiget key %d = %q, want %q", k, vals[k].Value, want[k])
		}
	}
	if n, max := fan.Count(), fan.Max(); n != 2 || max != 2 {
		t.Fatalf("after cross-shard multiget fan-out count=%d max=%v, want 2 observations, max 2", n, max)
	}
}

// TestLeaseViewChangeTortureNoStaleReads is the linearizability torture: one
// writer bumps a counter key through consensus while readers hammer the
// leased fast path, and mid-run the granting primary is killed so a view
// change races the lease. Every read must observe at least the last value
// the writer saw commit before the read was issued — a single stale read is
// a linearizability violation. Run under -race.
func TestLeaseViewChangeTortureNoStaleReads(t *testing.T) {
	// stallAfter is generous so the crashed group classifies ViewChanging
	// (traffic proceeds and drives the election), not Stalled (fail-fast
	// would starve the election of the very resends that trigger it).
	c, err := NewCluster(leaseFailoverConfig(1, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	key := freshKeysOnShard(c.Placement(), 0, 1, 50_000)[0]
	writer := c.Session(1)
	if err := writer.Insert(ctx, key, []byte("0")); err != nil {
		t.Fatal(err)
	}

	var committed atomic.Uint64 // last counter value known committed
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := writer.Put(ctx, key, []byte(strconv.FormatUint(i, 10))); err != nil {
				// Degraded-window refusals are fine; the write did not
				// commit, so the fence is not advanced.
				i--
				time.Sleep(5 * time.Millisecond)
				continue
			}
			committed.Store(i)
		}
	}()

	var staleReads, okReads atomic.Uint64
	for r := 0; r < 3; r++ {
		rd := c.Session(types.ClientID(2 + r))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The fence: anything committed before the read was issued
				// must be visible in the read's result.
				min := committed.Load()
				got, err := rd.Get(ctx, key)
				if err != nil {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				v, perr := strconv.ParseUint(string(got), 10, 64)
				if perr != nil {
					t.Errorf("unparseable read %q", got)
					return
				}
				if v < min {
					staleReads.Add(1)
					t.Errorf("STALE READ: got %d, %d was already committed", v, min)
					return
				}
				okReads.Add(1)
			}
		}()
	}

	// Let the lease warm up, then kill the granting primary mid-traffic.
	time.Sleep(500 * time.Millisecond)
	c.Group(0).Runtime().StopReplica(0)
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()

	if s := staleReads.Load(); s != 0 {
		t.Fatalf("%d stale reads", s)
	}
	if okReads.Load() == 0 || committed.Load() == 0 {
		t.Fatalf("torture made no progress: reads=%d writes=%d", okReads.Load(), committed.Load())
	}
	m := c.obs.Metrics()
	if m.Counter(obs.MLeaseReads).Value() == 0 {
		t.Fatal("fast path never used during torture")
	}
	if m.Counter(obs.MLeaseFallbacks).Value() == 0 {
		t.Fatal("primary death produced no fast-path fallbacks")
	}
	st := c.Stats()
	if st.PerShard[0].View == 0 {
		t.Fatal("view never changed — the torture did not race a view change")
	}
	t.Logf("torture: %d writes, %d reads (%d leased, %d fallbacks), final view %d",
		committed.Load(), okReads.Load(), m.Counter(obs.MLeaseReads).Value(),
		m.Counter(obs.MLeaseFallbacks).Value(), st.PerShard[0].View)
}

// TestRebalanceFreezeRevokesLease: committing an OpRangeFreeze (the first
// step of a rebalance) deterministically revokes the source group's lease —
// the revocation counter advances and the old primary's tracker deactivates
// — and reads of the moved keys remain correct afterwards under the new
// placement epoch.
func TestRebalanceFreezeRevokesLease(t *testing.T) {
	c, err := NewCluster(leaseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	sess := c.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Migratable sub-range of group 0 plus keys inside it (rebFixture's
	// computation, on a lease-enabled cluster).
	full := c.Placement().GroupRanges(0)[0]
	r := Range{Start: full.Start, End: full.Start + (full.End-full.Start)/2}
	var keys []uint64
	for k := uint64(10_000); len(keys) < 6; k++ {
		if r.Contains(kvstore.KeyHash(k)) {
			keys = append(keys, k)
		}
	}
	want := make(map[uint64][]byte)
	for i, k := range keys {
		v := []byte(fmt.Sprintf("moved-%d", i))
		if err := sess.Insert(ctx, k, v); err != nil {
			t.Fatalf("insert: %v", err)
		}
		want[k] = v
	}
	// Arm the lease on the source group.
	if _, err := sess.Get(ctx, keys[0]); err != nil {
		t.Fatal(err)
	}
	if _, active := c.Group(0).Runtime().Node(0).LeaseState(); !active {
		t.Fatal("source primary holds no active lease before the rebalance")
	}

	revBefore := c.obs.Metrics().Counter(obs.MLeaseRevocations).Value()
	if _, err := sess.Rebalance(ctx, r, 1); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if got := c.obs.Metrics().Counter(obs.MLeaseRevocations).Value(); got <= revBefore {
		t.Fatalf("lease revocations %d -> %d, want an increase from the range freeze", revBefore, got)
	}
	if epoch, active := c.Group(0).Runtime().Node(0).LeaseState(); active {
		t.Fatalf("source primary still serving lease epoch %d after freeze", epoch)
	}

	// The moved keys now live on group 1; the session's cached binding is
	// from the old placement epoch and must be dropped, re-granted, and the
	// values served correctly.
	for _, k := range keys {
		got, err := sess.Get(ctx, k)
		if err != nil {
			t.Fatalf("post-rebalance get %d: %v", k, err)
		}
		if !bytes.Equal(got, want[k]) {
			t.Fatalf("post-rebalance get %d = %q, want %q", k, got, want[k])
		}
	}
}

// TestLeaseCrashNearExpiryFallsBack: the granting primary dies right at the
// lease-expiry boundary; every read issued across the boundary must either
// serve the committed value through the consensus fallback or fail with a
// routing error — never a wrong value — and service resumes once the view
// change lands.
func TestLeaseCrashNearExpiryFallsBack(t *testing.T) {
	cfg := leaseFailoverConfig(1, 2*time.Second)
	cfg.Group.Engine.LeaseDuration = 60 * time.Millisecond
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	sess := c.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	key := freshKeysOnShard(c.Placement(), 0, 1, 50_000)[0]
	if err := sess.Insert(ctx, key, []byte("boundary")); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Get(ctx, key); err != nil { // arm the lease
		t.Fatal(err)
	}

	// Land the crash near the end of the 60ms lease window.
	time.Sleep(50 * time.Millisecond)
	c.Group(0).Runtime().StopReplica(0)

	deadline := time.Now().Add(10 * time.Second)
	served := false
	for time.Now().Before(deadline) {
		got, err := sess.Get(ctx, key)
		if err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if string(got) != "boundary" {
			t.Fatalf("read across crash boundary = %q, want %q", got, "boundary")
		}
		served = true
		break
	}
	if !served {
		t.Fatal("no read served after the primary crashed at the lease boundary")
	}
	// Which escape hatch fired is timing-dependent — lease-read timeout, the
	// health gate, or a blocked re-grant riding the election — but the read
	// can only have been served by the post-crash regime.
	if v := c.Stats().PerShard[0].View; v == 0 {
		t.Fatalf("read served but no view change installed (view %d)", v)
	}
}
