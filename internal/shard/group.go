package shard

import (
	"sync"
	"time"

	"flexitrust/internal/metrics"
	"flexitrust/internal/runtime"
	"flexitrust/internal/types"
)

// Group is one shard's consensus group: a full protocol deployment (its own
// replicas, transport hub, keyring and trusted components) whose trusted
// counter identifiers live in a namespace private to the shard, plus the
// shard-local bookkeeping the router needs (commit watermark, metrics).
type Group struct {
	// Index is the shard number this group serves (0..S-1).
	Index int

	inner     *runtime.Cluster
	watermark Watermark

	mu        sync.Mutex
	collector *metrics.Collector
	submitted uint64
	start     time.Time
}

// newGroup boots one shard's runtime cluster. cfg must already carry the
// shard's trusted-counter namespace and seed.
func newGroup(idx int, cfg runtime.ClusterConfig) (*Group, error) {
	inner, err := runtime.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return &Group{
		Index:     idx,
		inner:     inner,
		collector: metrics.NewCollector(0),
		start:     time.Now(),
	}, nil
}

// NewClient attaches a client library to this group.
func (g *Group) NewClient(id types.ClientID) *runtime.Client { return g.inner.NewClient(id) }

// Runtime exposes the underlying cluster (tests, failure injection).
func (g *Group) Runtime() *runtime.Cluster { return g.inner }

// noteCommit records a committed operation: the watermark advances to its
// consensus sequence number and its latency joins the shard's metrics.
func (g *Group) noteCommit(seq types.SeqNum, latency time.Duration) {
	g.watermark.Advance(seq)
	g.mu.Lock()
	g.collector.Record(time.Since(g.start), latency)
	g.mu.Unlock()
}

// noteSubmit counts an operation routed to this shard.
func (g *Group) noteSubmit() {
	g.mu.Lock()
	g.submitted++
	g.mu.Unlock()
}

// Watermark returns the shard's committed-sequence watermark.
func (g *Group) Watermark() types.SeqNum { return g.watermark.Load() }

// GroupStats is one shard's contribution to cluster-level numbers.
type GroupStats struct {
	Shard     int
	Submitted uint64        // operations routed to this shard
	Committed uint64        // operations committed (client-observed)
	Watermark types.SeqNum  // highest committed consensus sequence observed
	MeanLat   time.Duration // mean client-observed latency
	P99Lat    time.Duration
}

// Stats snapshots the group's counters.
func (g *Group) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GroupStats{
		Shard:     g.Index,
		Submitted: g.submitted,
		Committed: g.collector.TotalDone(),
		Watermark: g.watermark.Load(),
		MeanLat:   g.collector.MeanLatency(),
		P99Lat:    g.collector.Percentile(99),
	}
}

// snapshotCollector copies the group's collector under its lock so
// cluster-level merging never races with concurrent Record calls.
func (g *Group) snapshotCollector() *metrics.Collector {
	g.mu.Lock()
	defer g.mu.Unlock()
	return metrics.Merge(g.collector)
}

// Stop halts every replica in the group.
func (g *Group) Stop() { g.inner.Stop() }
