package shard

import (
	"sync"
	"time"

	"flexitrust/internal/metrics"
	"flexitrust/internal/runtime"
	"flexitrust/internal/types"
)

// Group is one shard's consensus group: a full protocol deployment (its own
// replicas, transport hub, keyring and trusted components) whose trusted
// counter identifiers live in a namespace private to the shard, plus the
// shard-local bookkeeping the router needs (commit watermark, metrics).
type Group struct {
	// Index is the shard number this group serves (0..S-1).
	Index int

	inner     *runtime.Cluster
	watermark Watermark

	mu        sync.Mutex
	collector *metrics.Collector
	submitted uint64
	inflight  int
	start     time.Time
}

// newGroup boots one shard's runtime cluster. cfg must already carry the
// shard's trusted-counter namespace and seed.
func newGroup(idx int, cfg runtime.ClusterConfig) (*Group, error) {
	inner, err := runtime.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return &Group{
		Index:     idx,
		inner:     inner,
		collector: metrics.NewCollector(0),
		start:     time.Now(),
	}, nil
}

// NewClient attaches a client library to this group.
func (g *Group) NewClient(id types.ClientID) *runtime.Client { return g.inner.NewClient(id) }

// Runtime exposes the underlying cluster (tests, failure injection).
func (g *Group) Runtime() *runtime.Cluster { return g.inner }

// noteCommit records a committed operation: the watermark advances to its
// consensus sequence number and its latency joins the shard's metrics.
func (g *Group) noteCommit(seq types.SeqNum, latency time.Duration) {
	g.watermark.Advance(seq)
	g.mu.Lock()
	g.collector.Record(time.Since(g.start), latency)
	g.mu.Unlock()
}

// noteSubmit counts an operation routed to this shard and marks it in
// flight; the paired noteDone (deferred by the submitter, error or not)
// retires it. The health monitor reads the in-flight count as "demand": a
// group with operations in flight but no commit progress is stalling real
// work.
func (g *Group) noteSubmit() {
	g.mu.Lock()
	g.submitted++
	g.inflight++
	g.mu.Unlock()
}

// noteDone retires an in-flight operation (committed or failed).
func (g *Group) noteDone() {
	g.mu.Lock()
	g.inflight--
	g.mu.Unlock()
}

// inflightOps returns the number of operations currently in flight.
func (g *Group) inflightOps() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// probeViews samples the group's replicas for the highest installed view
// and view-change count (down replicas excluded).
func (g *Group) probeViews() (view types.View, viewChanges uint64) {
	for _, p := range g.inner.Probe() {
		if !p.Up {
			continue
		}
		if p.Status.View > view {
			view = p.Status.View
		}
		if p.Status.ViewChanges > viewChanges {
			viewChanges = p.Status.ViewChanges
		}
	}
	return view, viewChanges
}

// committedOps returns the group's client-observed commit count.
func (g *Group) committedOps() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.collector.TotalDone()
}

// Watermark returns the shard's committed-sequence watermark.
func (g *Group) Watermark() types.SeqNum { return g.watermark.Load() }

// GroupStats is one shard's contribution to cluster-level numbers.
type GroupStats struct {
	Shard     int
	Submitted uint64        // operations routed to this shard
	Committed uint64        // operations committed (client-observed)
	Watermark types.SeqNum  // highest committed consensus sequence observed
	MeanLat   time.Duration // mean client-observed latency
	P99Lat    time.Duration
	// View is the highest view any up replica has installed; ViewChanges
	// counts installed views after genesis — a group that keeps electing
	// primaries is degrading even when throughput looks plausible.
	View        types.View
	ViewChanges uint64
}

// Stats snapshots the group's counters (including a live view probe).
func (g *Group) Stats() GroupStats {
	view, vcs := g.probeViews()
	g.mu.Lock()
	defer g.mu.Unlock()
	return GroupStats{
		Shard:       g.Index,
		Submitted:   g.submitted,
		Committed:   g.collector.TotalDone(),
		Watermark:   g.watermark.Load(),
		MeanLat:     g.collector.MeanLatency(),
		P99Lat:      g.collector.Percentile(99),
		View:        view,
		ViewChanges: vcs,
	}
}

// snapshotCollector copies the group's collector under its lock so
// cluster-level merging never races with concurrent Record calls. The copy
// carries the group's current view-change count so metrics.Merge can sum
// degradation alongside throughput.
func (g *Group) snapshotCollector() *metrics.Collector {
	_, vcs := g.probeViews()
	g.mu.Lock()
	defer g.mu.Unlock()
	snap := g.collector.Clone()
	snap.SetViewChanges(vcs)
	return snap
}

// Stop halts every replica in the group.
func (g *Group) Stop() { g.inner.Stop() }
