package shard

import (
	"context"
	"sync"
	"time"

	"flexitrust/internal/engine"
	"flexitrust/internal/kvstore"
	"flexitrust/internal/obs"
	"flexitrust/internal/trusted"
	"flexitrust/internal/types"
)

// leaseReadTimeout bounds one leased read round trip. A primary that does
// not answer within it (down, partitioned, overloaded) costs the caller this
// much before the consensus fallback — deliberately far below any client
// request timeout.
const leaseReadTimeout = 50 * time.Millisecond

// sessionLease is a session's cached view of one group's read lease: the
// (view, epoch) binding the grant committed under, the primary it authorizes,
// a conservative client-side expiry, and the placement epoch the grant was
// made under (an epoch flip invalidates the cache — the server side revoked
// at the freeze, this avoids pointless fast-path attempts).
type sessionLease struct {
	mu       sync.Mutex
	granting bool // single-flight: one grant in consensus at a time
	active   bool
	view     types.View
	epoch    uint64
	pmEpoch  uint64
	expiry   time.Time
	primary  types.ReplicaID
	attested bool // grant attestation verified (memoized per epoch)
}

// leasedGet attempts the leased fast path for one key: ask the believed
// lease-holding primary directly, no consensus. ok is false whenever the
// caller must fall back to a consensus read — lease missing or expired, group
// not Healthy, the primary refused (fence, unowned range, pending intent), or
// any session-side fence failed. found distinguishes a served NOTFOUND from
// a served value.
func (s *Session) leasedGet(ctx context.Context, key uint64) (val []byte, found, ok bool) {
	val, _, found, ok = s.leasedGetSeq(ctx, key)
	return val, found, ok
}

// leasedGetSeq is leasedGet exposing the watermark the read was served at
// (MultiGet's version vector needs it).
func (s *Session) leasedGetSeq(ctx context.Context, key uint64) (val []byte, seq types.SeqNum, found, ok bool) {
	if !s.c.leaseOn {
		return nil, 0, false, false
	}
	pm := s.placement()
	g := pm.ShardFor(key)
	// Health gate: a mid-election or stalled group never serves leased reads
	// — its lease is either revoked already or about to be.
	if s.c.mon.Check(g).State != GroupHealthy {
		return nil, 0, false, false
	}
	l := s.leases[g]
	view, epoch, primary, have := s.ensureLease(ctx, g, l, pm.Epoch())
	if !have {
		s.c.obs.Metrics().Counter(obs.MLeaseFallbacks).Inc()
		return nil, 0, false, false
	}
	// Fence: the group's commit watermark observed before the read is
	// issued. The primary must answer at or above it, so any write this
	// process saw commit is visible — the linearizability anchor.
	fence := s.c.groups[g].Watermark()
	start := time.Now()
	rctx, cancel := context.WithTimeout(ctx, leaseReadTimeout)
	reply, err := s.clients[g].LeaseRead(rctx, primary, key, fence)
	cancel()
	if err != nil {
		s.noteLeaseMiss(l, epoch, true)
		return nil, 0, false, false
	}
	switch reply.Status {
	case types.LeaseReadOK, types.LeaseReadNotFound:
	case types.LeaseReadNoLease:
		// The primary's lease is gone (expired, revoked, restarted); drop
		// the cache so the next read re-grants through consensus.
		s.noteLeaseMiss(l, epoch, true)
		return nil, 0, false, false
	default:
		// Refused: behind the fence, unowned range, or pending intent —
		// exactly the cases consensus must decide. Keep the lease.
		s.noteLeaseMiss(l, epoch, false)
		return nil, 0, false, false
	}
	// Session-side fences: the reply must bind the exact lease this session
	// holds and must not regress below the fence. A revoked-then-reelected
	// primary fails the view check; a primary serving from a stale view of
	// state fails the watermark check.
	if reply.Replica != primary || reply.View != view || reply.Epoch != epoch || reply.Watermark < fence {
		s.noteLeaseMiss(l, epoch, true)
		return nil, 0, false, false
	}
	if !s.leaseAttested(l, g, reply, epoch) {
		s.noteLeaseMiss(l, epoch, true)
		return nil, 0, false, false
	}
	s.c.obs.Metrics().Histogram(obs.MLeaseReadLatency).ObserveDuration(time.Since(start))
	return reply.Value, reply.Watermark, reply.Status == types.LeaseReadOK, true
}

// ensureLease returns the cached lease binding for group g, granting a fresh
// one through consensus when the cache is empty, expired, or from an older
// placement epoch. Grants are single-flight per session: concurrent readers
// that lose the race read through consensus this once rather than stampede
// the group with grant ops.
func (s *Session) ensureLease(ctx context.Context, g int, l *sessionLease, pmEpoch uint64) (types.View, uint64, types.ReplicaID, bool) {
	l.mu.Lock()
	if l.active && l.pmEpoch == pmEpoch && time.Now().Before(l.expiry) {
		v, e, p := l.view, l.epoch, l.primary
		l.mu.Unlock()
		return v, e, p, true
	}
	if l.granting {
		l.mu.Unlock()
		return 0, 0, 0, false
	}
	l.granting = true
	l.mu.Unlock()

	// The grant is an ordinary committed op: every replica's store bumps the
	// lease epoch deterministically, and the primary that executes it arms
	// its clock-bound tracker with one attested counter access.
	res, _, view, err := s.submitShardSeq(ctx, g, kvstore.EncodeLeaseGrant(s.c.leaseDur))
	epoch, decoded := kvstore.DecodeLeaseGrant(res)

	l.mu.Lock()
	defer l.mu.Unlock()
	l.granting = false
	if err != nil || !decoded {
		return 0, 0, 0, false
	}
	l.active = true
	l.view = view
	l.epoch = epoch
	l.pmEpoch = pmEpoch
	l.primary = types.Primary(view, s.c.groups[g].Runtime().N())
	// Client-side expiry is conservative: measured from after commit, with
	// the full safety margin, so the session stops using a lease before the
	// primary stops honouring it.
	l.expiry = time.Now().Add(s.c.leaseDur - s.c.leaseMargin)
	l.attested = false
	return l.view, l.epoch, l.primary, true
}

// leaseAttested verifies, once per lease epoch, that the serving primary
// holds the grant attestation: the trusted counter's proof over the
// (namespace, view, epoch, duration) binding. Memoized — the fast path pays
// one HMAC check per grant, not per read.
func (s *Session) leaseAttested(l *sessionLease, g int, reply *types.LeaseReadReply, epoch uint64) bool {
	l.mu.Lock()
	done := l.attested && l.epoch == epoch
	l.mu.Unlock()
	if done {
		return true
	}
	if reply.Attest == nil {
		return false
	}
	ns := uint16(g + 1)
	want := engine.LeaseGrantDigest(ns, reply.View, reply.Epoch, s.c.leaseDur)
	if reply.Attest.Digest != want {
		return false
	}
	if !s.c.groups[g].Runtime().Auth.Verify(trusted.MapAttestation(reply.Attest, ns)) {
		return false
	}
	l.mu.Lock()
	if l.epoch == epoch {
		l.attested = true
	}
	l.mu.Unlock()
	return true
}

// multiGetLeased is MultiGet's one-shard short-circuit: when every key maps
// to the same healthy group under the current placement (and leases are on),
// the keys are served through the leased fast path with no fan-out machinery
// — no partition map, result channel, or per-key goroutines. It fills
// values/versions/touched in place and returns the keys the fast path could
// not serve (refused, lease missing); handled is false when the short-circuit
// does not apply at all and the caller must run the general path over the
// full key set.
func (s *Session) multiGetLeased(ctx context.Context, span *obs.Span, keys []uint64,
	values map[uint64]kvstore.ReadResult, versions ShardVector, touched map[int]bool) (handled bool, rest []uint64) {
	if !s.c.leaseOn || len(keys) == 0 {
		return false, keys
	}
	pm := s.placement()
	g := pm.ShardFor(keys[0])
	for _, k := range keys[1:] {
		if pm.ShardFor(k) != g {
			return false, keys
		}
	}
	if s.c.mon.Check(g).State != GroupHealthy {
		return false, keys
	}
	// The short-circuit IS the fan-out measurement for this call: one shard.
	s.c.obs.Metrics().Histogram(obs.MMultiGetFanout).Observe(1)
	span.Annotate("single-shard leased read: %d keys on group %d", len(keys), g)
	for _, k := range keys {
		val, seq, found, ok := s.leasedGetSeq(ctx, k)
		if !ok {
			rest = append(rest, k)
			continue
		}
		touched[g] = true
		if seq > versions[g] {
			versions[g] = seq
		}
		values[k] = kvstore.ReadResult{Found: found, Value: val}
	}
	if len(rest) > 0 {
		span.Annotate("%d keys fell back to the fan-out path", len(rest))
	}
	return true, rest
}

// noteLeaseMiss counts a fast-path miss; drop additionally invalidates the
// cached lease (when it still names the epoch the miss was observed under)
// so the next read re-grants instead of re-asking a dead primary.
func (s *Session) noteLeaseMiss(l *sessionLease, epoch uint64, drop bool) {
	s.c.obs.Metrics().Counter(obs.MLeaseFallbacks).Inc()
	if !drop {
		return
	}
	l.mu.Lock()
	if l.epoch == epoch {
		l.active = false
	}
	l.mu.Unlock()
}
