package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"flexitrust/internal/kvstore"
	"flexitrust/internal/txn"
)

// freshKeysOnShard returns `count` keys owned by the given shard that lie
// above the store's preloaded records (so "exists" is observable).
func freshKeysOnShard(pm *PlacementMap, shard, count int, records uint64) []uint64 {
	var out []uint64
	for k := records; len(out) < count; k++ {
		if pm.ShardFor(k) == shard {
			out = append(out, k)
		}
	}
	return out
}

// txnFixture boots a 2-shard cluster and returns a session plus one fresh
// key per shard (distinct keys per call via the offset).
type txnFixture struct {
	c    *Cluster
	sess *Session
}

func newTxnFixture(t *testing.T) *txnFixture {
	t.Helper()
	c, err := NewCluster(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return &txnFixture{c: c, sess: c.Session(1)}
}

// keyPair picks the i-th fresh key on each shard.
func (f *txnFixture) keyPair(i int) (uint64, uint64) {
	k0 := freshKeysOnShard(f.c.Placement(), 0, i+1, 10_000)[i]
	k1 := freshKeysOnShard(f.c.Placement(), 1, i+1, 10_000)[i]
	return k0, k1
}

// TestTxnCommitAcrossShards is the happy path on real consensus groups: a
// MultiPut spanning both shards commits atomically, the values are visible
// read-committed, nothing stays blocked, and the commit decision cost
// exactly one attested counter access.
func TestTxnCommitAcrossShards(t *testing.T) {
	f := newTxnFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	k0, k1 := f.keyPair(0)

	before := f.c.Arbiter().Accesses()
	writes := map[uint64][]byte{k0: []byte("cross-a"), k1: []byte("cross-b")}
	if err := f.sess.MultiPut(ctx, writes); err != nil {
		t.Fatal(err)
	}
	if got := f.c.Arbiter().Accesses() - before; got != 1 {
		t.Fatalf("commit decision cost %d attested accesses, want exactly 1", got)
	}
	vals, _, err := f.sess.MultiGet(ctx, []uint64{k0, k1})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range writes {
		if rr := vals[k]; !rr.Found || !bytes.Equal(rr.Value, want) || rr.BlockedBy != 0 {
			t.Fatalf("key %d after commit: %+v", k, rr)
		}
	}
	if f.c.TxnLog().Len() != 1 {
		t.Fatalf("decision log has %d entries, want 1", f.c.TxnLog().Len())
	}
}

// TestMultiGetReportsPendingIntent: a transaction parked after prepare (its
// coordinator "crashed" before deciding) must surface as an explicit
// per-key blocked-by-intent signal in MultiGet — with the read-committed
// fallback — rather than a silent stale read; resolving the transaction
// clears the signal.
func TestMultiGetReportsPendingIntent(t *testing.T) {
	f := newTxnFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	k0, k1 := f.keyPair(0)

	// Seed a committed value under one of the keys so the fallback is
	// observable.
	if err := f.sess.Insert(ctx, k0, []byte("old")); err != nil {
		t.Fatal(err)
	}
	res, err := f.sess.TxnWithOptions(ctx, []kvstore.TxnWrite{
		{Key: k0, Code: kvstore.OpInsert, Value: []byte("new")},
		{Key: k1, Code: kvstore.OpInsert, Value: []byte("new")},
	}, txn.Options{CrashAt: txn.PhaseVoted})
	if !errors.Is(err, txn.ErrCoordinatorCrashed) {
		t.Fatalf("err = %v", err)
	}

	vals, _, err := f.sess.MultiGet(ctx, []uint64{k0, k1})
	if err != nil {
		t.Fatal(err)
	}
	if rr := vals[k0]; rr.BlockedBy != res.TxID || !rr.Found || !bytes.Equal(rr.Value, []byte("old")) {
		t.Fatalf("k0 pending read = %+v, want blocked by %d with fallback \"old\"", rr, res.TxID)
	}
	if rr := vals[k1]; rr.BlockedBy != res.TxID || rr.Found {
		t.Fatalf("k1 pending read = %+v, want blocked with no committed value", rr)
	}

	// The in-doubt timeout has elapsed (the coordinator is dead by
	// construction); resolution aborts and unblocks.
	d, err := f.sess.ResolveTxn(ctx, res.TxID)
	if err != nil {
		t.Fatal(err)
	}
	if d.Commit {
		t.Fatal("undecided transaction resolved as commit")
	}
	vals, _, err = f.sess.MultiGet(ctx, []uint64{k0, k1})
	if err != nil {
		t.Fatal(err)
	}
	if rr := vals[k0]; rr.BlockedBy != 0 || !bytes.Equal(rr.Value, []byte("old")) {
		t.Fatalf("k0 after resolve = %+v", rr)
	}
	if rr := vals[k1]; rr.BlockedBy != 0 || rr.Found {
		t.Fatalf("k1 after resolve = %+v", rr)
	}
}

// TestTxnAtomicity injects a coordinator crash at every phase boundary of a
// multi-shard transaction and checks all-or-nothing after recovery: the
// write set is either visible on both shards (decision published before the
// crash) or on neither (crash before publication ⇒ recovery aborts), never
// split.
func TestTxnAtomicity(t *testing.T) {
	f := newTxnFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cases := []struct {
		name       string
		opts       txn.Options
		wantCommit bool
	}{
		{"crash-after-votes", txn.Options{CrashAt: txn.PhaseVoted}, false},
		{"crash-after-attest", txn.Options{CrashAt: txn.PhaseAttested}, false},
		{"crash-after-publish", txn.Options{CrashAt: txn.PhasePublished}, true},
		{"crash-mid-drive", txn.Options{DriveOnly: map[int]bool{0: true}}, true},
		{"no-crash", txn.Options{}, true},
	}
	for i, tc := range cases {
		tc, i := tc, i
		t.Run(tc.name, func(t *testing.T) {
			k0, k1 := f.keyPair(i + 1)
			val := []byte(fmt.Sprintf("atomic-%d", i))
			res, err := f.sess.TxnWithOptions(ctx, []kvstore.TxnWrite{
				{Key: k0, Code: kvstore.OpInsert, Value: val},
				{Key: k1, Code: kvstore.OpInsert, Value: val},
			}, tc.opts)
			crashed := tc.opts.CrashAt != txn.PhaseNone || tc.opts.DriveOnly != nil
			if crashed {
				if tc.opts.CrashAt != txn.PhaseNone && !errors.Is(err, txn.ErrCoordinatorCrashed) {
					t.Fatalf("err = %v, want coordinator crash", err)
				}
				d, err := f.sess.ResolveTxn(ctx, res.TxID)
				if err != nil {
					t.Fatal(err)
				}
				if d.Commit != tc.wantCommit {
					t.Fatalf("recovery decided commit=%v, want %v", d.Commit, tc.wantCommit)
				}
			} else if err != nil {
				t.Fatal(err)
			}

			vals, _, err := f.sess.MultiGet(ctx, []uint64{k0, k1})
			if err != nil {
				t.Fatal(err)
			}
			r0, r1 := vals[k0], vals[k1]
			if r0.BlockedBy != 0 || r1.BlockedBy != 0 {
				t.Fatalf("intents survive recovery: %+v %+v", r0, r1)
			}
			if r0.Found != r1.Found {
				t.Fatalf("ATOMICITY VIOLATED: shard0 found=%v shard1 found=%v", r0.Found, r1.Found)
			}
			if r0.Found != tc.wantCommit {
				t.Fatalf("outcome found=%v, want %v", r0.Found, tc.wantCommit)
			}
			if tc.wantCommit && (!bytes.Equal(r0.Value, val) || !bytes.Equal(r1.Value, val)) {
				t.Fatalf("committed values wrong: %q %q", r0.Value, r1.Value)
			}
		})
	}
}

// TestTxnConflictAborts: two transactions racing for the same key — the
// loser aborts cleanly and the winner's effects stand.
func TestTxnConflictAborts(t *testing.T) {
	f := newTxnFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	k0, k1 := f.keyPair(0)

	// Holder parks a prepared transaction on k0.
	held, err := f.sess.TxnWithOptions(ctx, []kvstore.TxnWrite{
		{Key: k0, Code: kvstore.OpInsert, Value: []byte("held")},
	}, txn.Options{CrashAt: txn.PhaseVoted})
	if !errors.Is(err, txn.ErrCoordinatorCrashed) {
		t.Fatal(err)
	}
	// A second transaction touching k0 (and k1) must abort whole.
	_, err = f.sess.Txn(ctx, []kvstore.TxnWrite{
		{Key: k0, Code: kvstore.OpInsert, Value: []byte("loser")},
		{Key: k1, Code: kvstore.OpInsert, Value: []byte("loser")},
	})
	if !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("conflicting txn err = %v, want ErrAborted", err)
	}
	vals, _, err := f.sess.MultiGet(ctx, []uint64{k0, k1})
	if err != nil {
		t.Fatal(err)
	}
	if rr := vals[k1]; rr.Found || rr.BlockedBy != 0 {
		t.Fatalf("loser leaked onto k1: %+v", rr)
	}
	if rr := vals[k0]; rr.BlockedBy != held.TxID {
		t.Fatalf("holder's intent gone: %+v", rr)
	}
	// A plain (non-transactional) write against the held key must fail
	// loudly, not report success while the store refuses it.
	if err := f.sess.Insert(ctx, k0, []byte("plain")); err == nil {
		t.Fatal("plain Insert against a held key reported success")
	}
	if err := f.sess.Put(ctx, k0, []byte("plain")); err == nil {
		t.Fatal("plain Put against a held key reported success")
	}
	// Cleanup: resolve the holder (aborts) so nothing stays locked.
	if _, err := f.sess.ResolveTxn(ctx, held.TxID); err != nil {
		t.Fatal(err)
	}
}
