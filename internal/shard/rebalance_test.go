package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"flexitrust/internal/kvstore"
	"flexitrust/internal/txn"
)

// rebFixture boots a 2-shard cluster and computes a migratable sub-range of
// group `src`'s keyspace plus keys inside it.
type rebFixture struct {
	c    *Cluster
	sess *Session
	r    Range
	keys []uint64 // keys above the preloaded records whose hash ∈ r
}

func newRebFixture(t *testing.T, src int, keyCount int) *rebFixture {
	t.Helper()
	c, err := NewCluster(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	f := &rebFixture{c: c, sess: c.Session(1)}
	// Migrate the lower half of the source group's first range.
	full := c.Placement().GroupRanges(src)[0]
	f.r = Range{Start: full.Start, End: full.Start + (full.End-full.Start)/2}
	for k := uint64(10_000); len(f.keys) < keyCount; k++ {
		if f.r.Contains(kvstore.KeyHash(k)) {
			f.keys = append(f.keys, k)
		}
	}
	return f
}

// ownersOf submits a raw read for key to both groups and returns which
// groups serve a committed value for it. A group answering WrongShard has
// released the range; one answering NOTFOUND holds no committed value (the
// store-level ownership fence is the released set — full-map routing is the
// session's job). "Doubly owned" means two groups would serve the key.
func (f *rebFixture) ownersOf(ctx context.Context, key uint64) ([]int, map[int][]byte) {
	var owners []int
	vals := make(map[int][]byte)
	for g := 0; g < f.c.Shards(); g++ {
		res, err := f.sess.submitShard(ctx, g, &kvstore.Op{Code: kvstore.OpRead, Key: key})
		if err != nil {
			continue
		}
		if string(res) != kvstore.WrongShard && string(res) != "NOTFOUND" {
			owners = append(owners, g)
			vals[g] = res
		}
	}
	return owners, vals
}

// TestRebalanceMovesRangeLive is the happy path on real consensus groups: a
// range with committed keys migrates from group 0 to group 1 mid-session;
// the session transparently re-routes (old epoch retry-then-succeed), every
// key keeps its value, exactly one group owns each key afterwards, and the
// placement change cost exactly one attested counter access.
func TestRebalanceMovesRangeLive(t *testing.T) {
	f := newRebFixture(t, 0, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	for i, k := range f.keys {
		if err := f.sess.Insert(ctx, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if e := f.sess.Epoch(); e != 1 {
		t.Fatalf("fresh session at epoch %d, want 1", e)
	}
	before := f.c.Arbiter().Accesses()
	res, err := f.sess.Rebalance(ctx, f.r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.From != 0 || res.To != 1 || res.Epoch != 2 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Moved < len(f.keys) {
		t.Fatalf("moved %d records, wrote %d in range", res.Moved, len(f.keys))
	}
	if got := f.c.Arbiter().Accesses() - before; got != 1 {
		t.Fatalf("placement change cost %d attested accesses, want exactly 1", got)
	}
	if e := f.c.Placement().Epoch(); e != 2 {
		t.Fatalf("cluster epoch %d after commit, want 2", e)
	}

	// Every migrated key: exactly one owner (the destination), value intact.
	for i, k := range f.keys {
		owners, vals := f.ownersOf(ctx, k)
		if len(owners) != 1 || owners[0] != 1 {
			t.Fatalf("key %d owned by groups %v, want exactly [1]", k, owners)
		}
		if want := []byte(fmt.Sprintf("v%d", i)); !bytes.Equal(vals[1], want) {
			t.Fatalf("key %d = %q after migration, want %q", k, vals[1], want)
		}
		// The session (which cached epoch 1 before the flip) re-routes
		// transparently.
		got, err := f.sess.Get(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if want := []byte(fmt.Sprintf("v%d", i)); !bytes.Equal(got, want) {
			t.Fatalf("session read of key %d = %q, want %q", k, got, want)
		}
	}
	if e := f.sess.Epoch(); e != 2 {
		t.Fatalf("session still at epoch %d after re-route, want 2", e)
	}
	// Writes through the new epoch land on the destination.
	if err := f.sess.Put(ctx, f.keys[0], []byte("post-flip")); err != nil {
		t.Fatal(err)
	}
	owners, _ := f.ownersOf(ctx, f.keys[0])
	if len(owners) != 1 || owners[0] != 1 {
		t.Fatalf("post-flip write landed on groups %v", owners)
	}
}

// TestRebalanceStaleSessionRetries: a session that cached the old epoch
// BEFORE another session's rebalance transparently retries through the
// updated map — both reads and writes — and ends on the new epoch.
func TestRebalanceStaleSessionRetries(t *testing.T) {
	f := newRebFixture(t, 0, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	stale := f.c.Session(2) // a second identity; caches epoch 1 now
	if err := stale.Insert(ctx, f.keys[0], []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.sess.Rebalance(ctx, f.r, 1); err != nil {
		t.Fatal(err)
	}
	// The stale session still routes by epoch 1: its first submission hits
	// the source, is answered WrongShard, and must retry to success.
	if got, err := stale.Get(ctx, f.keys[0]); err != nil || !bytes.Equal(got, []byte("old")) {
		t.Fatalf("stale session read = %q, %v", got, err)
	}
	if err := stale.Put(ctx, f.keys[0], []byte("new")); err != nil {
		t.Fatalf("stale session write: %v", err)
	}
	if e := stale.Epoch(); e != 2 {
		t.Fatalf("stale session still at epoch %d, want 2", e)
	}
	vals, _, err := stale.MultiGet(ctx, f.keys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vals[f.keys[0]].Value, []byte("new")) {
		t.Fatalf("multi-get after migration = %+v", vals[f.keys[0]])
	}
}

// TestRebalanceAtomicityUnderCrash injects an orchestrator crash at every
// handoff phase boundary (mirroring TestTxnAtomicity) and checks after
// recovery that ownership is all-or-nothing: the range is either fully on
// the destination (decision published before the crash) or fully back on
// the source (recovery aborts), with zero lost and zero doubly-owned keys
// either way, and stale sessions keep routing correctly.
func TestRebalanceAtomicityUnderCrash(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()

	cases := []struct {
		name       string
		opts       RebalanceOptions
		wantCommit bool
	}{
		{"crash-after-prepare", RebalanceOptions{CrashAt: txn.PhaseVoted}, false},
		{"crash-after-attest", RebalanceOptions{CrashAt: txn.PhaseAttested}, false},
		{"crash-after-publish", RebalanceOptions{CrashAt: txn.PhasePublished}, true},
		{"crash-mid-drive-src-only", RebalanceOptions{DriveOnly: map[int]bool{0: true}}, true},
		{"crash-mid-drive-dst-only", RebalanceOptions{DriveOnly: map[int]bool{1: true}}, true},
		{"no-crash", RebalanceOptions{}, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := newRebFixture(t, 0, 2)
			for i, k := range f.keys {
				if err := f.sess.Insert(ctx, k, []byte(fmt.Sprintf("a%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			res, err := f.sess.RebalanceWithOptions(ctx, f.r, 1, tc.opts)
			crashed := tc.opts.CrashAt != txn.PhaseNone || tc.opts.DriveOnly != nil
			if crashed {
				if tc.opts.CrashAt != txn.PhaseNone && !errors.Is(err, txn.ErrCoordinatorCrashed) {
					t.Fatalf("err = %v, want coordinator crash", err)
				}
				// In-doubt resolution settles the handoff through the log.
				d, rerr := f.sess.ResolveTxn(ctx, res.HandoffID)
				if rerr != nil {
					t.Fatal(rerr)
				}
				if d.Commit != tc.wantCommit {
					t.Fatalf("recovery decided commit=%v, want %v", d.Commit, tc.wantCommit)
				}
			} else if err != nil {
				t.Fatal(err)
			}

			wantEpoch := uint64(1)
			wantOwner := 0
			if tc.wantCommit {
				wantEpoch, wantOwner = 2, 1
			}
			if e := f.c.Placement().Epoch(); e != wantEpoch {
				t.Fatalf("cluster epoch %d after recovery, want %d", e, wantEpoch)
			}
			for i, k := range f.keys {
				owners, vals := f.ownersOf(ctx, k)
				if len(owners) != 1 {
					t.Fatalf("OWNERSHIP VIOLATED: key %d owned by groups %v", k, owners)
				}
				if owners[0] != wantOwner {
					t.Fatalf("key %d on group %d, want %d", k, owners[0], wantOwner)
				}
				if want := []byte(fmt.Sprintf("a%d", i)); !bytes.Equal(vals[owners[0]], want) {
					t.Fatalf("KEY LOST: key %d = %q, want %q", k, vals[owners[0]], want)
				}
				// The session routes to the surviving owner either way.
				got, err := f.sess.Get(ctx, k)
				if err != nil {
					t.Fatal(err)
				}
				if want := []byte(fmt.Sprintf("a%d", i)); !bytes.Equal(got, want) {
					t.Fatalf("session read of key %d = %q, want %q", k, got, want)
				}
			}
			// Writes work again post-recovery (the abort unfroze the range;
			// the commit moved it).
			if err := f.sess.Put(ctx, f.keys[0], []byte("settled")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRebalanceEpochRegressionRejected: installing a map whose epoch does
// not advance the current one is refused, so replayed or raced flips can
// never roll ownership back.
func TestRebalanceEpochRegressionRejected(t *testing.T) {
	f := newRebFixture(t, 0, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	old := f.c.Placement()
	if _, err := f.sess.Rebalance(ctx, f.r, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.c.installPlacement(old); err == nil {
		t.Fatal("epoch regression accepted")
	}
	next, err := old.WithReassigned(f.r, 1) // same epoch (2) as installed
	if err != nil {
		t.Fatal(err)
	}
	if err := f.c.installPlacement(next); err == nil {
		t.Fatal("duplicate epoch accepted")
	}
}

// TestRebalanceConflictingHandoffsCannotBothOwn: two handoffs proposing the
// same successor epoch — the log's per-epoch first-wins rule lets exactly
// one activate, so no two groups can both claim a range even with a
// Byzantine orchestrator minting both flips.
func TestRebalanceConflictingHandoffsCannotBothOwn(t *testing.T) {
	f := newRebFixture(t, 0, 1)
	pm := f.c.Placement()
	nextA, err := pm.WithReassigned(f.r, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A second, conflicting successor for the SAME epoch (different range).
	full := pm.GroupRanges(0)[0]
	otherR := Range{Start: f.r.End + 1, End: full.End}
	nextB, err := pm.WithReassigned(otherR, 1)
	if err != nil {
		t.Fatal(err)
	}
	hidA, hidB := f.c.newTxID(), f.c.newTxID()
	attA, err := f.c.arbiter.DecidePlacement(hidA, nextA.Epoch(), nextA.Digest())
	if err != nil {
		t.Fatal(err)
	}
	// The Byzantine orchestrator mints BOTH (two accesses — already off the
	// one-access honest path) ...
	attB, err := f.c.arbiter.DecidePlacement(hidB, nextB.Epoch(), nextB.Digest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.c.txnLog.Publish(txn.Decision{TxID: hidA, Commit: true, Epoch: nextA.Epoch(), Placement: nextA.Digest(), Att: attA}); err != nil {
		t.Fatal(err)
	}
	// ... but the second publication for the epoch is rejected outright.
	_, err = f.c.txnLog.Publish(txn.Decision{TxID: hidB, Commit: true, Epoch: nextB.Epoch(), Placement: nextB.Digest(), Att: attB})
	if !errors.Is(err, txn.ErrEpochClaimed) {
		t.Fatalf("conflicting epoch publication: err=%v, want ErrEpochClaimed", err)
	}
	// A forged placement decision (digest not matching the attestation)
	// never publishes.
	_, err = f.c.txnLog.Publish(txn.Decision{TxID: hidB, Commit: true, Epoch: nextB.Epoch() + 1, Placement: nextB.Digest(), Att: attB})
	if !errors.Is(err, txn.ErrBadAttestation) {
		t.Fatalf("forged placement decision: err=%v, want ErrBadAttestation", err)
	}
}

// TestTxnHistoryCompaction drives transactions to completion, gossips the
// stability watermark, and checks that (a) the attestation log and the
// shards' decision history shrink, (b) a late retry below the watermark is
// refused safely — no intents installed, no decision re-minted — and (c)
// in-doubt resolution refuses ids below the watermark instead of minting
// bogus aborts.
func TestTxnHistoryCompaction(t *testing.T) {
	f := newTxnFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	k0, k1 := f.keyPair(0)

	if err := f.sess.MultiPut(ctx, map[uint64][]byte{k0: []byte("a"), k1: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	res, err := f.sess.Txn(ctx, []kvstore.TxnWrite{{Key: k0, Code: kvstore.OpInsert, Value: []byte("c")}})
	if err != nil {
		t.Fatal(err)
	}
	if f.c.TxnLog().Len() != 2 {
		t.Fatalf("log holds %d decisions before compaction, want 2", f.c.TxnLog().Len())
	}
	wm, err := f.sess.CompactTxnHistory(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if wm < res.TxID {
		t.Fatalf("stability watermark %d below settled txid %d", wm, res.TxID)
	}
	if f.c.TxnLog().Len() != 0 {
		t.Fatalf("log still holds %d decisions after compaction", f.c.TxnLog().Len())
	}

	// A late retried prepare below the watermark is refused without
	// installing anything.
	prep, err := kvstore.EncodeTxnPrepare(res.TxID, []kvstore.TxnWrite{{Key: k0, Code: kvstore.OpInsert, Value: []byte("late")}})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.sess.submitShard(ctx, f.c.ShardFor(k0), prep)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != kvstore.TxnStale {
		t.Fatalf("late prepare answered %q, want %q", raw, kvstore.TxnStale)
	}
	vals, _, err := f.sess.MultiGet(ctx, []uint64{k0})
	if err != nil {
		t.Fatal(err)
	}
	if vals[k0].BlockedBy != 0 || !bytes.Equal(vals[k0].Value, []byte("c")) {
		t.Fatalf("late retry disturbed state: %+v", vals[k0])
	}
	// A late decision retry is refused the same way.
	raw, err = f.sess.submitShard(ctx, f.c.ShardFor(k0), kvstore.EncodeTxnDecision(false, res.TxID, 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != kvstore.TxnStale {
		t.Fatalf("late decision answered %q, want %q", raw, kvstore.TxnStale)
	}
	// And resolution below the watermark refuses rather than minting an
	// abort for a transaction that actually committed.
	if _, err := f.sess.ResolveTxn(ctx, res.TxID); !errors.Is(err, txn.ErrBelowWatermark) {
		t.Fatalf("resolve below watermark: err=%v, want ErrBelowWatermark", err)
	}
	// Watermark survives and transactions continue normally above it.
	if err := f.sess.MultiPut(ctx, map[uint64][]byte{k0: []byte("after")}); err != nil {
		t.Fatal(err)
	}
}
