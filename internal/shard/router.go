package shard

import "flexitrust/internal/kvstore"

// Router deterministically partitions the key-value store's keyspace across
// S consensus groups. Placement is a pure function of the key and the shard
// count — every client, replica and tool computes the same assignment with no
// coordination — and is derived from kvstore.KeyHash so dense YCSB-style
// integer keys spread uniformly.
type Router struct {
	shards int
}

// NewRouter builds a router over `shards` groups (at least 1).
func NewRouter(shards int) Router {
	if shards < 1 {
		shards = 1
	}
	return Router{shards: shards}
}

// Shards returns the number of groups routed across.
func (r Router) Shards() int { return r.shards }

// ShardFor maps a key to its owning group.
func (r Router) ShardFor(key uint64) int {
	return int(kvstore.KeyHash(key) % uint64(r.shards))
}

// Partition groups keys by owning shard, preserving each shard's input
// order. Multi-get uses it to build per-shard read sets.
func (r Router) Partition(keys []uint64) map[int][]uint64 {
	parts := make(map[int][]uint64)
	for _, k := range keys {
		s := r.ShardFor(k)
		parts[s] = append(parts[s], k)
	}
	return parts
}
