package shard

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPlacementRefreshRaceUnderLoad drives the stale-epoch race end to end
// under the race detector: sessions loop Do and MultiGet against keys on
// both sides of a migrating range while two rebalances install successor
// placements (epoch 1→2→3) under their feet. Readers must ride through
// every flip — cached-epoch retry on WrongShard/RangeMigrating against
// concurrent installPlacement — with no errors, no stale values, and both
// sessions converged on the final epoch.
func TestPlacementRefreshRaceUnderLoad(t *testing.T) {
	f := newRebFixture(t, 0, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// One key inside the migrating range, one far outside it.
	inKey := f.keys[0]
	outKey := freshKeysOnShard(f.c.Placement(), 1, 1, 300_000)[0]
	if err := f.sess.Insert(ctx, inKey, []byte("steady")); err != nil {
		t.Fatal(err)
	}
	if err := f.sess.Insert(ctx, outKey, []byte("steady")); err != nil {
		t.Fatal(err)
	}

	reader := f.c.Session(2) // caches epoch 1 now; must refresh mid-flight
	var stop atomic.Bool
	var reads atomic.Uint64
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got, err := reader.Get(ctx, inKey)
				if err != nil {
					errs <- fmt.Errorf("get: %w", err)
					return
				}
				if !bytes.Equal(got, []byte("steady")) {
					errs <- fmt.Errorf("get read %q mid-flip", got)
					return
				}
				vals, _, err := reader.MultiGet(ctx, []uint64{inKey, outKey})
				if err != nil {
					errs <- fmt.Errorf("multiget: %w", err)
					return
				}
				for k, rr := range vals {
					if rr.Unavailable || !bytes.Equal(rr.Value, []byte("steady")) {
						errs <- fmt.Errorf("multiget key %d = %+v mid-flip", k, rr)
						return
					}
				}
				reads.Add(2)
			}
		}()
	}

	// Two placement flips while the readers run: out to group 1, back to
	// group 0.
	if _, err := f.sess.Rebalance(ctx, f.r, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.sess.Rebalance(ctx, f.r, 0); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if reads.Load() == 0 {
		t.Fatal("readers never overlapped the flips")
	}
	if e := f.c.Placement().Epoch(); e != 3 {
		t.Fatalf("cluster at epoch %d after two flips, want 3", e)
	}
	// Both sessions converge on the final epoch through ordinary retries.
	if _, err := reader.Get(ctx, inKey); err != nil {
		t.Fatal(err)
	}
	if e := reader.Epoch(); e != 3 {
		t.Fatalf("reader session stuck at epoch %d, want 3", e)
	}
}
