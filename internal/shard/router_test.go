package shard

import (
	"testing"
)

// TestRouterDeterministic checks that key→shard assignment is a pure
// function: two routers with the same shard count agree on every key.
func TestRouterDeterministic(t *testing.T) {
	a := NewRouter(8)
	b := NewRouter(8)
	for key := uint64(0); key < 10_000; key++ {
		sa, sb := a.ShardFor(key), b.ShardFor(key)
		if sa != sb {
			t.Fatalf("key %d: assignments differ (%d vs %d)", key, sa, sb)
		}
		if sa < 0 || sa >= 8 {
			t.Fatalf("key %d: shard %d out of range", key, sa)
		}
	}
}

// TestRouterUniformDistribution bounds the chi-square statistic of the
// shard assignment of a dense integer keyspace (the YCSB shape): with
// 100k keys over S shards the statistic must stay near its S-1 degrees of
// freedom, far from the hot-shard regime.
func TestRouterUniformDistribution(t *testing.T) {
	const keys = 100_000
	for _, shards := range []int{2, 4, 8, 16} {
		r := NewRouter(shards)
		counts := make([]int, shards)
		for key := uint64(0); key < keys; key++ {
			counts[r.ShardFor(key)]++
		}
		expected := float64(keys) / float64(shards)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 3(S-1) is several times the chi-square mean (S-1): loose enough to
		// be robust, tight enough that any skewed hash fails. The router is
		// deterministic, so this never flakes.
		if bound := 3 * float64(shards-1); chi2 > bound {
			t.Fatalf("S=%d: chi2=%.1f exceeds %.1f (counts %v)", shards, chi2, bound, counts)
		}
		t.Logf("S=%-3d chi2=%.2f counts=%v", shards, chi2, counts)
	}
}

// TestRouterPartition checks that Partition covers all keys, puts each on
// its ShardFor shard, and preserves per-shard input order.
func TestRouterPartition(t *testing.T) {
	r := NewRouter(4)
	keys := []uint64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	parts := r.Partition(keys)
	total := 0
	for s, ks := range parts {
		total += len(ks)
		for _, k := range ks {
			if r.ShardFor(k) != s {
				t.Fatalf("key %d placed on shard %d, ShardFor says %d", k, s, r.ShardFor(k))
			}
		}
	}
	if total != len(keys) {
		t.Fatalf("partition covers %d of %d keys", total, len(keys))
	}
	// Per-shard order preservation: each shard's list must be a subsequence
	// of the input.
	for s, ks := range parts {
		idx := 0
		for _, k := range ks {
			for idx < len(keys) && keys[idx] != k {
				idx++
			}
			if idx == len(keys) {
				t.Fatalf("shard %d list %v is not an ordered subsequence of input", s, ks)
			}
			idx++
		}
	}
}
