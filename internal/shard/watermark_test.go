package shard

import (
	"sync"
	"testing"

	"flexitrust/internal/types"
)

// TestWatermarkConcurrentAdvance hammers one watermark from many goroutines
// (the MultiGet fan-out does exactly this) under -race: the final value must
// be the maximum ever advanced to, and loads must never observe a regress.
func TestWatermarkConcurrentAdvance(t *testing.T) {
	var w Watermark
	const (
		writers   = 8
		perWriter = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := types.SeqNum(0)
			for i := 1; i <= perWriter; i++ {
				w.Advance(types.SeqNum(g*perWriter + i))
				if got := w.Load(); got < last {
					t.Errorf("watermark regressed: %d after %d", got, last)
					return
				} else {
					last = got
				}
			}
		}()
	}
	wg.Wait()
	if got, want := w.Load(), types.SeqNum(writers*perWriter); got != want {
		t.Fatalf("final watermark %d, want %d", got, want)
	}
	// Advancing backwards is a no-op.
	w.Advance(1)
	if got := w.Load(); got != types.SeqNum(writers*perWriter) {
		t.Fatalf("backward advance moved the watermark to %d", got)
	}
}
