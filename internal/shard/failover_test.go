package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flexitrust/internal/kvstore"
	"flexitrust/internal/txn"
)

// failoverConfig is testConfig tuned for snappy recovery: short view-change
// timeout, client resends near it, and a stall threshold small enough for
// tests to observe Stalled without waiting seconds.
func failoverConfig(shards int, stallAfter time.Duration) Config {
	cfg := testConfig(shards)
	cfg.Group.Engine.ViewChangeTimeout = 150 * time.Millisecond
	cfg.Group.ClientRetry = 200 * time.Millisecond
	cfg.Health = HealthConfig{StallAfter: stallAfter, ProbeEvery: time.Millisecond}
	return cfg
}

// waitForState polls the monitor until group g reaches the wanted state.
func waitForState(t *testing.T, c *Cluster, g int, want GroupState, within time.Duration) GroupHealth {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		h := c.Monitor().Sample()[g]
		if h.State == want {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("group %d stuck at %v (want %v): %+v", g, h.State, want, h)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHealthMonitorClassifiesPrimaryFailure: a fresh cluster is Healthy;
// killing a group's primary moves it through ViewChanging (primary down)
// and, because nothing is driving the election, to Stalled once the stall
// threshold passes; traffic then drives the view change and the group
// returns to Healthy with its view advanced.
func TestHealthMonitorClassifiesPrimaryFailure(t *testing.T) {
	c, err := NewCluster(failoverConfig(2, 300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	sess := c.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for _, h := range c.Health() {
		if h.State != GroupHealthy {
			t.Fatalf("fresh group %d is %v, want healthy", h.Group, h.State)
		}
	}
	key := freshKeysOnShard(c.Placement(), 0, 1, 50_000)[0]
	if err := sess.Insert(ctx, key, []byte("pre")); err != nil {
		t.Fatal(err)
	}

	c.Group(0).Runtime().StopReplica(0)
	h := waitForState(t, c, 0, GroupViewChanging, 2*time.Second)
	if h.PrimaryUp {
		t.Fatalf("primary reported up after stop: %+v", h)
	}
	// No traffic: the election never starts, and the degradation clock
	// escalates the classification to Stalled.
	h = waitForState(t, c, 0, GroupStalled, 2*time.Second)
	if h.StalledFor < 300*time.Millisecond {
		t.Fatalf("stalled classification with StalledFor=%v", h.StalledFor)
	}
	// With the group Stalled, single-key operations fail fast and name it.
	if _, err := sess.Get(ctx, key); !errors.Is(err, ErrShardDegraded) {
		t.Fatalf("Get against stalled group = %v, want ErrShardDegraded", err)
	}
	// A cross-shard read reports the degraded shard's keys explicitly and
	// still serves the healthy shard.
	other := freshKeysOnShard(c.Placement(), 1, 1, 50_000)[0]
	if err := sess.Insert(ctx, other, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	vals, _, err := sess.MultiGet(ctx, []uint64{key, other})
	if err != nil {
		t.Fatal(err)
	}
	if !vals[key].Unavailable {
		t.Fatalf("degraded shard's key not reported unavailable: %+v", vals[key])
	}
	if vals[other].Unavailable || !bytes.Equal(vals[other].Value, []byte("ok")) {
		t.Fatalf("healthy shard's key misread: %+v", vals[other])
	}
	// And a cross-shard transaction touching the stalled group fails fast
	// without installing intents anywhere.
	_, err = sess.Txn(ctx, []kvstore.TxnWrite{
		{Key: key, Code: kvstore.OpInsert, Value: []byte("x")},
		{Key: other, Code: kvstore.OpInsert, Value: []byte("y")},
	})
	if !errors.Is(err, ErrShardDegraded) {
		t.Fatalf("txn with stalled participant = %v, want ErrShardDegraded", err)
	}
	if rr, _, err := sess.MultiGet(ctx, []uint64{other}); err != nil || rr[other].BlockedBy != 0 {
		t.Fatalf("healthy participant holds an intent after fail-fast: %+v, %v", rr[other], err)
	}

	// Drive the election directly (the orchestrator's freeze would do the
	// same): the group recovers and the monitor follows.
	go func() {
		op := &kvstore.Op{Code: kvstore.OpUpdate, Key: key, Value: []byte("post")}
		_, _ = sess.submitShard(ctx, 0, op)
	}()
	h = waitForState(t, c, 0, GroupHealthy, 10*time.Second)
	if h.View == 0 || h.ViewChanges == 0 {
		t.Fatalf("recovered without advancing the view: %+v", h)
	}
	st := c.Stats()
	if st.ViewChanges == 0 {
		t.Fatalf("cluster stats report no view changes: %+v", st)
	}
	if ps := st.PerShard[0]; ps.View == 0 || ps.ViewChanges == 0 {
		t.Fatalf("per-shard stats missed the view change: %+v", ps)
	}
}

// TestSessionsRideThroughPrimaryFailure: concurrent writers keep committing
// across a primary kill — the health-aware routing defers to the election
// instead of erroring, and every acknowledged write is durable.
func TestSessionsRideThroughPrimaryFailure(t *testing.T) {
	c, err := NewCluster(failoverConfig(2, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	sess := c.Session(1)

	keys := freshKeysOnShard(c.Placement(), 0, 40, 50_000)
	var wg sync.WaitGroup
	errs := make(chan error, len(keys))
	written := make(chan uint64, len(keys))
	half := len(keys) / 2
	write := func(ks []uint64) {
		defer wg.Done()
		for _, k := range ks {
			if err := sess.Insert(ctx, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
				errs <- fmt.Errorf("key %d: %w", k, err)
				return
			}
			written <- k
		}
	}
	wg.Add(1)
	go write(keys[:half])
	// Let the first writer get going, then kill the primary mid-stream.
	time.Sleep(50 * time.Millisecond)
	c.Group(0).Runtime().StopReplica(0)
	wg.Add(1)
	go write(keys[half:])
	wg.Wait()
	close(errs)
	close(written)
	for err := range errs {
		t.Fatal(err)
	}
	// Every acknowledged write is readable after the view change.
	for k := range written {
		got, err := sess.Get(ctx, k)
		if err != nil {
			t.Fatalf("key %d after failover: %v", k, err)
		}
		if want := []byte(fmt.Sprintf("v%d", k)); !bytes.Equal(got, want) {
			t.Fatalf("key %d = %q, want %q", k, got, want)
		}
	}
	if h := c.Monitor().Sample()[0]; h.ViewChanges == 0 {
		t.Fatalf("no view change recorded riding through the failure: %+v", h)
	}
}

// TestFailoverEvacuatesStalledGroup kills a shard's primary mid-workload
// and runs the orchestrator once the group classifies Stalled: the group's
// ranges evacuate to the healthy groups (each placement change exactly one
// attested access), the evacuation itself driving the wedged group's view
// change, and a post-failover key census finds every committed key exactly
// once.
func TestFailoverEvacuatesStalledGroup(t *testing.T) {
	c, err := NewCluster(failoverConfig(3, 250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	sess := c.Session(1)

	// Commit a census population across all shards.
	var keys []uint64
	for g := 0; g < 3; g++ {
		keys = append(keys, freshKeysOnShard(c.Placement(), g, 6, 50_000)...)
	}
	for _, k := range keys {
		if err := sess.Insert(ctx, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}

	c.Group(0).Runtime().StopReplica(0)
	waitForState(t, c, 0, GroupStalled, 3*time.Second)

	// Background writers on the healthy shards ride through undisturbed.
	var wg sync.WaitGroup
	bgErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, k := range freshKeysOnShard(c.Placement(), 1, 10, 200_000) {
			if err := sess.Insert(ctx, k, []byte(fmt.Sprintf("bg%d", i))); err != nil {
				select {
				case bgErr <- err:
				default:
				}
				return
			}
		}
	}()

	before := c.Arbiter().Accesses()
	epochBefore := c.Placement().Epoch()
	res, err := NewFailoverOrchestrator(sess).RunOnce(ctx)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-bgErr:
		t.Fatalf("healthy-shard writer disturbed by evacuation: %v", err)
	default:
	}
	if len(res) != 1 || res[0].Group != 0 || len(res[0].Handoffs) == 0 {
		t.Fatalf("unexpected orchestration result %+v", res)
	}
	for _, h := range res[0].Handoffs {
		if !h.Committed {
			t.Fatalf("evacuation handoff %d did not commit: %+v", h.HandoffID, h)
		}
	}
	// Exactly one attested access per placement change.
	if got, want := c.Arbiter().Accesses()-before, uint64(len(res[0].Handoffs)); got != want {
		t.Fatalf("evacuation cost %d attested accesses for %d placement changes", got, want)
	}
	if e := c.Placement().Epoch(); e != epochBefore+uint64(len(res[0].Handoffs)) {
		t.Fatalf("epoch %d after %d handoffs from %d", e, len(res[0].Handoffs), epochBefore)
	}
	if ranges := c.Placement().GroupRanges(0); len(ranges) != 0 {
		t.Fatalf("evacuated group still owns %v", ranges)
	}

	// Census: every committed key readable, owned by exactly one group,
	// and no key routes to the evacuated group.
	for _, k := range keys {
		if g := c.ShardFor(k); g == 0 {
			t.Fatalf("key %d still routed to evacuated group", k)
		}
		got, err := sess.Get(ctx, k)
		if err != nil {
			t.Fatalf("key %d after evacuation: %v", k, err)
		}
		if want := []byte(fmt.Sprintf("v%d", k)); !bytes.Equal(got, want) {
			t.Fatalf("key %d = %q after evacuation, want %q", k, got, want)
		}
		owners := ownersAcrossGroups(ctx, t, sess, c, k)
		if len(owners) != 1 {
			t.Fatalf("key %d owned by groups %v after evacuation", k, owners)
		}
	}
	// The evacuation's traffic drove the wedged group's election: it is
	// healthy again (and range-less).
	waitForState(t, c, 0, GroupHealthy, 5*time.Second)
}

// ownersAcrossGroups reports which groups serve a committed value for key.
func ownersAcrossGroups(ctx context.Context, t *testing.T, sess *Session, c *Cluster, key uint64) []int {
	t.Helper()
	var owners []int
	for g := 0; g < c.Shards(); g++ {
		res, err := sess.submitShard(ctx, g, &kvstore.Op{Code: kvstore.OpRead, Key: key})
		if err != nil {
			t.Fatalf("census read of key %d on group %d: %v", key, g, err)
		}
		if s := string(res); s != kvstore.WrongShard && s != "NOTFOUND" {
			owners = append(owners, g)
		}
	}
	return owners
}

// TestFailoverAtomicityUnderCrash injects an orchestrator crash at every
// handoff boundary during an evacuation of a primary-less group and
// resolves the in-doubt handoff: ownership stays all-or-nothing at every
// boundary, with zero lost and zero doubly-owned keys.
func TestFailoverAtomicityUnderCrash(t *testing.T) {
	for _, phase := range []txn.Phase{txn.PhaseVoted, txn.PhaseAttested, txn.PhasePublished} {
		phase := phase
		t.Run(phase.String(), func(t *testing.T) {
			c, err := NewCluster(failoverConfig(2, 250*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			sess := c.Session(1)
			keys := freshKeysOnShard(c.Placement(), 0, 4, 50_000)
			for _, k := range keys {
				if err := sess.Insert(ctx, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
					t.Fatal(err)
				}
			}
			c.Group(0).Runtime().StopReplica(0)
			waitForState(t, c, 0, GroupStalled, 3*time.Second)

			orch := NewFailoverOrchestrator(sess)
			res, err := orch.EvacuateGroup(ctx, 0, FailoverOptions{CrashAt: phase})
			if !errors.Is(err, txn.ErrCoordinatorCrashed) {
				t.Fatalf("injected crash at %v returned %v", phase, err)
			}
			if len(res.Handoffs) == 0 {
				t.Fatal("crashed evacuation reported no handoff")
			}
			hid := res.Handoffs[len(res.Handoffs)-1].HandoffID
			d, err := sess.ResolveTxn(ctx, hid)
			if err != nil {
				t.Fatalf("resolving in-doubt evacuation handoff: %v", err)
			}
			// Before publication recovery aborts; after it the published
			// commit governs.
			wantCommit := phase == txn.PhasePublished
			if d.Commit != wantCommit {
				t.Fatalf("crash at %v resolved commit=%v, want %v", phase, d.Commit, wantCommit)
			}
			wantOwner := 0
			if wantCommit {
				wantOwner = 1
			}
			for _, k := range keys {
				owners := ownersAcrossGroups(ctx, t, sess, c, k)
				if len(owners) != 1 || owners[0] != wantOwner {
					t.Fatalf("crash at %v: key %d owned by %v, want [%d]", phase, k, owners, wantOwner)
				}
				got, err := sess.Get(ctx, k)
				if err != nil {
					t.Fatal(err)
				}
				if want := []byte(fmt.Sprintf("v%d", k)); !bytes.Equal(got, want) {
					t.Fatalf("crash at %v: key %d = %q, want %q", phase, k, got, want)
				}
			}
		})
	}
}

// TestConcurrentOrchestratorsCannotBothRePoint: two orchestrators race to
// evacuate the same degraded group toward different destinations; the
// first-wins-per-epoch attestation log lets exactly one placement change
// activate per epoch, so afterwards each range has exactly one owner and
// every key exactly one home.
func TestConcurrentOrchestratorsCannotBothRePoint(t *testing.T) {
	c, err := NewCluster(failoverConfig(3, 250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	sessA, sessB := c.Session(1), c.Session(2)
	keys := freshKeysOnShard(c.Placement(), 0, 4, 50_000)
	for _, k := range keys {
		if err := sessA.Insert(ctx, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	c.Group(0).Runtime().StopReplica(0)
	waitForState(t, c, 0, GroupStalled, 3*time.Second)

	var wg sync.WaitGroup
	run := func(s *Session, dest int) {
		defer wg.Done()
		// Races surface as ErrEpochClaimed internally; EvacuateGroup
		// absorbs them and converges, so both orchestrators return clean.
		if _, err := NewFailoverOrchestrator(s).EvacuateGroup(ctx, 0, FailoverOptions{Destinations: []int{dest}}); err != nil {
			t.Errorf("orchestrator to %d: %v", dest, err)
		}
	}
	wg.Add(2)
	go run(sessA, 1)
	go run(sessB, 2)
	wg.Wait()

	if ranges := c.Placement().GroupRanges(0); len(ranges) != 0 {
		t.Fatalf("group 0 still owns %v after racing evacuations", ranges)
	}
	for _, k := range keys {
		owners := ownersAcrossGroups(ctx, t, sessA, c, k)
		if len(owners) != 1 {
			t.Fatalf("key %d owned by groups %v after racing evacuations", k, owners)
		}
		got, err := sessA.Get(ctx, k)
		if err != nil || !bytes.Equal(got, []byte(fmt.Sprintf("v%d", k))) {
			t.Fatalf("key %d = %q, %v after racing evacuations", k, got, err)
		}
	}
}
