// Package workload generates YCSB-style key-value workloads: operation mixes
// over a Zipfian or uniform key distribution, matching the paper's evaluation
// setup (YCSB over 600k records).
package workload

import (
	"math"
	"math/rand"

	"flexitrust/internal/kvstore"
)

// Mix gives the probability of each operation type. Fields should sum to 1;
// any remainder goes to reads.
type Mix struct {
	ReadFraction   float64
	UpdateFraction float64
	InsertFraction float64
	ScanFraction   float64
	RMWFraction    float64
}

// YCSBA is the update-heavy mix (50/50 read/update) used for the paper's
// throughput experiments.
var YCSBA = Mix{ReadFraction: 0.5, UpdateFraction: 0.5}

// YCSBB is the read-mostly mix (95/5).
var YCSBB = Mix{ReadFraction: 0.95, UpdateFraction: 0.05}

// YCSBC is read-only.
var YCSBC = Mix{ReadFraction: 1.0}

// Config parameterizes a generator.
type Config struct {
	Records   int // key space size (paper: 600_000)
	Mix       Mix
	Zipfian   bool    // Zipfian (true) vs uniform key choice
	ZipfTheta float64 // Zipfian skew; YCSB default 0.99
	ValueSize int     // bytes per written value
	Seed      int64
}

// DefaultConfig returns the paper's evaluation workload.
func DefaultConfig() Config {
	return Config{
		Records:   600_000,
		Mix:       YCSBA,
		Zipfian:   true,
		ZipfTheta: 0.99,
		ValueSize: 8,
		Seed:      1,
	}
}

// ReadHeavy returns the default workload with the read fraction raised to
// frac (the remainder updates): the operating point where the leased-read
// fast path pays off. frac is clamped to [0, 1].
func ReadHeavy(frac float64) Config {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	cfg := DefaultConfig()
	cfg.Mix = Mix{ReadFraction: frac, UpdateFraction: 1 - frac}
	return cfg
}

// Generator produces operations. Not safe for concurrent use; give each
// client pool its own generator.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *zipfGen
	val  []byte
}

// NewGenerator builds a generator for cfg.
func NewGenerator(cfg Config) *Generator {
	if cfg.Records <= 0 {
		cfg.Records = 1
	}
	g := &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		val: make([]byte, cfg.ValueSize),
	}
	if cfg.Zipfian {
		g.zipf = newZipfGen(g.rng, uint64(cfg.Records), cfg.ZipfTheta)
	}
	for i := range g.val {
		g.val[i] = byte(i)
	}
	return g
}

// NextKey draws a key from the configured distribution.
func (g *Generator) NextKey() uint64 {
	if g.zipf != nil {
		return g.zipf.next()
	}
	return uint64(g.rng.Intn(g.cfg.Records))
}

// Next produces the next operation, encoded and ready to be wrapped in a
// client request.
func (g *Generator) Next() []byte {
	op := g.nextOp()
	return op.Encode()
}

// nextOp draws the next operation.
func (g *Generator) nextOp() *kvstore.Op {
	p := g.rng.Float64()
	m := g.cfg.Mix
	key := g.NextKey()
	switch {
	case p < m.UpdateFraction:
		return &kvstore.Op{Code: kvstore.OpUpdate, Key: key, Value: g.val}
	case p < m.UpdateFraction+m.InsertFraction:
		return &kvstore.Op{Code: kvstore.OpInsert, Key: uint64(g.cfg.Records) + uint64(g.rng.Int63n(1<<40)), Value: g.val}
	case p < m.UpdateFraction+m.InsertFraction+m.ScanFraction:
		return &kvstore.Op{Code: kvstore.OpScan, Key: key, Count: uint16(1 + g.rng.Intn(32))}
	case p < m.UpdateFraction+m.InsertFraction+m.ScanFraction+m.RMWFraction:
		return &kvstore.Op{Code: kvstore.OpRMW, Key: key, Value: g.val}
	default:
		return &kvstore.Op{Code: kvstore.OpRead, Key: key}
	}
}

// zipfGen implements the Gray et al. quick Zipfian generator used by YCSB
// (math/rand's Zipf has a different parameterization and no theta=0.99
// support across arbitrary ranges, so we implement the standard one).
type zipfGen struct {
	rng               *rand.Rand
	n                 uint64
	theta             float64
	alpha, zetan, eta float64
	zeta2             float64
}

// newZipfGen precomputes the YCSB zipfian constants for n items.
func newZipfGen(rng *rand.Rand, n uint64, theta float64) *zipfGen {
	z := &zipfGen{rng: rng, n: n, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zetaStatic computes the n-th generalized harmonic number of order theta.
// O(n) once at construction; 600k terms is instantaneous.
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// next draws the next Zipfian-distributed item in [0, n).
func (z *zipfGen) next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
