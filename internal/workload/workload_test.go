package workload

import (
	"testing"
	"testing/quick"

	"flexitrust/internal/kvstore"
)

func TestGeneratorDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, b := NewGenerator(cfg), NewGenerator(cfg)
	for i := 0; i < 1000; i++ {
		if string(a.Next()) != string(b.Next()) {
			t.Fatalf("generators with identical seeds diverged at op %d", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	c := NewGenerator(cfg2)
	same := 0
	for i := 0; i < 100; i++ {
		if string(NewGenerator(cfg).Next()) == string(c.Next()) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestKeysWithinRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 1000
	g := NewGenerator(cfg)
	for i := 0; i < 10000; i++ {
		if k := g.NextKey(); k >= 1000 {
			t.Fatalf("key %d outside record space", k)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 10000
	g := NewGenerator(cfg)
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[g.NextKey()]++
	}
	// YCSB zipfian with theta=0.99: the hottest key takes several percent
	// of accesses; uniform would give 0.01%.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/draws < 0.01 {
		t.Fatalf("hottest key only %.4f%% of draws; zipfian skew missing", 100*float64(max)/draws)
	}
	// And the tail is still covered (not degenerate).
	if len(counts) < 1000 {
		t.Fatalf("only %d distinct keys drawn; distribution degenerate", len(counts))
	}
}

func TestUniformSpread(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 1000
	cfg.Zipfian = false
	g := NewGenerator(cfg)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		counts[g.NextKey()]++
	}
	for k, c := range counts {
		if c > 500 { // uniform expectation 100, generous bound
			t.Fatalf("key %d drawn %d times under uniform distribution", k, c)
		}
	}
}

func TestMixProportions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mix = Mix{ReadFraction: 0.5, UpdateFraction: 0.5}
	g := NewGenerator(cfg)
	reads, updates, other := 0, 0, 0
	for i := 0; i < 20000; i++ {
		op, err := kvstore.DecodeOp(g.Next())
		if err != nil {
			t.Fatal(err)
		}
		switch op.Code {
		case kvstore.OpRead:
			reads++
		case kvstore.OpUpdate:
			updates++
		default:
			other++
		}
	}
	if other != 0 {
		t.Fatalf("%d ops outside the 50/50 read/update mix", other)
	}
	ratio := float64(reads) / float64(reads+updates)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("read fraction %.3f, want ~0.5", ratio)
	}
}

// Property: every generated operation decodes successfully — the state
// machine never sees malformed input from the workload.
func TestGeneratedOpsAlwaysDecode(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Mix = Mix{ReadFraction: 0.3, UpdateFraction: 0.3, InsertFraction: 0.2, ScanFraction: 0.1, RMWFraction: 0.1}
		g := NewGenerator(cfg)
		for i := 0; i < int(n); i++ {
			if _, err := kvstore.DecodeOp(g.Next()); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
