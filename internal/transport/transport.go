// Package transport provides the real message fabrics the runtime package
// runs protocols over: an in-process hub for single-binary clusters and
// tests, and a TCP transport with identity handshakes for multi-process
// deployments (cmd/replica, cmd/client).
package transport

import (
	"fmt"
	"sync"

	"flexitrust/internal/wire"
)

// Addr identifies an endpoint on a transport: a replica or a client.
type Addr struct {
	Replica  int32
	Client   uint64
	IsClient bool
}

// ReplicaAddr returns a replica endpoint address.
func ReplicaAddr(id int32) Addr { return Addr{Replica: id} }

// ClientAddr returns a client endpoint address.
func ClientAddr(id uint64) Addr { return Addr{Client: id, IsClient: true} }

// String renders the address.
func (a Addr) String() string {
	if a.IsClient {
		return fmt.Sprintf("client-%d", a.Client)
	}
	return fmt.Sprintf("replica-%d", a.Replica)
}

// Handler consumes inbound envelopes.
type Handler func(env *wire.Envelope)

// Transport delivers envelopes between endpoints. Implementations must be
// safe for concurrent use.
type Transport interface {
	// Send delivers env to the endpoint at to. Delivery is best-effort:
	// consensus tolerates loss, and callers never block on a dead peer.
	Send(to Addr, env *wire.Envelope)
	// SetHandler installs the inbound message callback (before any Send).
	SetHandler(h Handler)
	// Close releases resources.
	Close() error
}

// Hub is an in-process switchboard connecting ChanTransports by address.
type Hub struct {
	mu    sync.RWMutex
	ports map[Addr]*ChanTransport
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{ports: make(map[Addr]*ChanTransport)}
}

// Attach creates (and registers) a transport endpoint for addr. The
// endpoint's inbox holds up to buf envelopes; sends to a full inbox drop
// (consensus is loss-tolerant, and dropping beats deadlocking the sender).
func (h *Hub) Attach(addr Addr, buf int) *ChanTransport {
	if buf <= 0 {
		buf = 4096
	}
	t := &ChanTransport{hub: h, addr: addr, inbox: make(chan *wire.Envelope, buf), done: make(chan struct{})}
	h.mu.Lock()
	h.ports[addr] = t
	h.mu.Unlock()
	go t.loop()
	return t
}

// lookup finds an endpoint.
func (h *Hub) lookup(addr Addr) *ChanTransport {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ports[addr]
}

// detach removes an endpoint.
func (h *Hub) detach(addr Addr) {
	h.mu.Lock()
	delete(h.ports, addr)
	h.mu.Unlock()
}

// ChanTransport is one endpoint on a Hub.
type ChanTransport struct {
	hub   *Hub
	addr  Addr
	inbox chan *wire.Envelope
	done  chan struct{}

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

// Send implements Transport.
func (t *ChanTransport) Send(to Addr, env *wire.Envelope) {
	peer := t.hub.lookup(to)
	if peer == nil {
		return
	}
	select {
	case peer.inbox <- env:
	case <-peer.done:
	default:
		// Inbox full: drop. The protocols' retransmission paths recover.
	}
}

// SetHandler implements Transport.
func (t *ChanTransport) SetHandler(h Handler) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// loop drains the inbox into the handler.
func (t *ChanTransport) loop() {
	for {
		select {
		case env := <-t.inbox:
			t.mu.RLock()
			h := t.handler
			t.mu.RUnlock()
			if h != nil {
				h(env)
			}
		case <-t.done:
			return
		}
	}
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	close(t.done)
	t.hub.detach(t.addr)
	return nil
}
