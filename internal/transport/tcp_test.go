package transport

import (
	"testing"
	"time"

	"flexitrust/internal/types"
	"flexitrust/internal/wire"
)

func TestTCPRoundTripBetweenReplicas(t *testing.T) {
	a, err := NewTCP(ReplicaAddr(0), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	book := map[int32]string{0: a.Addr()}
	b, err := NewTCP(ReplicaAddr(1), "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	got := make(chan *wire.Envelope, 10)
	a.SetHandler(func(env *wire.Envelope) { got <- env })
	replies := make(chan *wire.Envelope, 10)
	b.SetHandler(func(env *wire.Envelope) { replies <- env })

	// b dials a, handshakes, delivers; the transport stamps identity.
	b.Send(ReplicaAddr(0), &wire.Envelope{From: 1,
		Msg: &types.Prepare{View: 1, Seq: 9, Replica: 1}})
	select {
	case env := <-got:
		if env.From != 1 || env.IsClient {
			t.Fatalf("envelope identity = %+v, want replica 1", env)
		}
		if p, ok := env.Msg.(*types.Prepare); !ok || p.Seq != 9 {
			t.Fatalf("message = %#v", env.Msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never arrived")
	}

	// a replies to b over the same (reused inbound) connection.
	a.Send(ReplicaAddr(1), &wire.Envelope{From: 0,
		Msg: &types.Commit{View: 1, Seq: 9, Replica: 0}})
	select {
	case env := <-replies:
		if env.From != 0 {
			t.Fatalf("reply identity = %+v", env)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reply never arrived")
	}
}

func TestTCPClientIdentityStamped(t *testing.T) {
	srv, err := NewTCP(ReplicaAddr(0), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got := make(chan *wire.Envelope, 1)
	srv.SetHandler(func(env *wire.Envelope) { got <- env })

	cli, err := NewTCP(ClientAddr(42), "127.0.0.1:0", map[int32]string{0: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// A lying body: claims client 7; the transport must stamp 42.
	cli.Send(ReplicaAddr(0), &wire.Envelope{Client: 7, IsClient: true,
		Msg: &types.ClientRequest{Client: 7, ReqNo: 1, Op: []byte("x")}})
	select {
	case env := <-got:
		if !env.IsClient || env.Client != 42 {
			t.Fatalf("identity = %+v, want client 42", env)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request never arrived")
	}

	// And the replica can reply to the client over the inbound conn.
	cliGot := make(chan *wire.Envelope, 1)
	cli.SetHandler(func(env *wire.Envelope) { cliGot <- env })
	srv.Send(ClientAddr(42), &wire.Envelope{From: 0, Msg: &types.Response{Replica: 0, Seq: 1}})
	select {
	case <-cliGot:
	case <-time.After(2 * time.Second):
		t.Fatal("response never arrived")
	}
}

func TestHubDelivery(t *testing.T) {
	hub := NewHub()
	a := hub.Attach(ReplicaAddr(0), 8)
	b := hub.Attach(ReplicaAddr(1), 8)
	defer a.Close()
	defer b.Close()
	got := make(chan *wire.Envelope, 1)
	b.SetHandler(func(env *wire.Envelope) { got <- env })
	a.Send(ReplicaAddr(1), &wire.Envelope{From: 0, Msg: &types.Prepare{Seq: 3}})
	select {
	case env := <-got:
		if env.Msg.(*types.Prepare).Seq != 3 {
			t.Fatalf("wrong message: %#v", env.Msg)
		}
	case <-time.After(time.Second):
		t.Fatal("hub never delivered")
	}
	// Send to a missing endpoint is a silent no-op.
	a.Send(ReplicaAddr(9), &wire.Envelope{From: 0, Msg: &types.Prepare{}})
}
