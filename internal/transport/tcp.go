package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"flexitrust/internal/types"
	"flexitrust/internal/wire"
)

// TCPTransport connects endpoints over TCP with length-prefixed wire frames.
// Each node listens on its own address; outbound connections are dialed
// lazily, announced with a Hello handshake, and reused. Failed peers are
// redialed with backoff on the next send.
type TCPTransport struct {
	self      Addr
	listen    net.Listener
	peers     map[Addr]string // static address book for replicas
	mu        sync.Mutex
	conns     map[Addr]net.Conn
	handler   Handler
	hmu       sync.RWMutex
	closed    chan struct{}
	closeOnce sync.Once
	lastDial  map[Addr]time.Time
	wg        sync.WaitGroup
}

// NewTCP starts a TCP transport for self, listening on bind, with the
// replica address book peers (replica id → host:port). Clients dial in and
// are learned from their Hello.
func NewTCP(self Addr, bind string, peers map[int32]string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	book := make(map[Addr]string, len(peers))
	for id, hostport := range peers {
		book[ReplicaAddr(id)] = hostport
	}
	t := &TCPTransport{
		self:     self,
		listen:   ln,
		peers:    book,
		conns:    make(map[Addr]net.Conn),
		closed:   make(chan struct{}),
		lastDial: make(map[Addr]time.Time),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.listen.Addr().String() }

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.hmu.Lock()
	t.handler = h
	t.hmu.Unlock()
}

// acceptLoop admits inbound connections.
func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listen.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
				continue
			}
		}
		t.wg.Add(1)
		go t.readLoop(conn, nil)
	}
}

// readLoop pumps frames into the handler. For inbound connections the peer
// identity comes from its Hello handshake; for dialed connections the caller
// already knows who it connected to and passes `known`.
func (t *TCPTransport) readLoop(conn net.Conn, known *Addr) {
	defer t.wg.Done()
	defer conn.Close()
	var peer Addr
	introduced := false
	if known != nil {
		peer = *known
		introduced = true
	}
	for {
		env, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		if hello, ok := env.Msg.(*types.Hello); ok {
			if hello.IsClient {
				peer = ClientAddr(uint64(hello.Client))
			} else {
				peer = ReplicaAddr(int32(hello.Replica))
			}
			introduced = true
			t.mu.Lock()
			if _, exists := t.conns[peer]; !exists {
				t.conns[peer] = conn
			}
			t.mu.Unlock()
			continue
		}
		if !introduced {
			return // protocol messages before Hello: hang up
		}
		// Stamp the authenticated identity; bodies cannot impersonate.
		if peer.IsClient {
			env.IsClient = true
			env.Client = types.ClientID(peer.Client)
		} else {
			env.IsClient = false
			env.From = types.ReplicaID(peer.Replica)
		}
		t.hmu.RLock()
		h := t.handler
		t.hmu.RUnlock()
		if h != nil {
			h(env)
		}
	}
}

// Send implements Transport.
func (t *TCPTransport) Send(to Addr, env *wire.Envelope) {
	conn := t.conn(to)
	if conn == nil {
		return
	}
	if err := wire.WriteFrame(conn, env); err != nil {
		t.dropConn(to, conn)
	}
}

// conn returns (dialing if needed) the connection to a peer.
func (t *TCPTransport) conn(to Addr) net.Conn {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c
	}
	hostport, known := t.peers[to]
	if !known {
		t.mu.Unlock()
		return nil // clients are reached only over their inbound conns
	}
	if time.Since(t.lastDial[to]) < 200*time.Millisecond {
		t.mu.Unlock()
		return nil // backoff
	}
	t.lastDial[to] = time.Now()
	t.mu.Unlock()

	c, err := net.DialTimeout("tcp", hostport, time.Second)
	if err != nil {
		return nil
	}
	hello := &types.Hello{}
	if t.self.IsClient {
		hello.IsClient = true
		hello.Client = types.ClientID(t.self.Client)
	} else {
		hello.Replica = types.ReplicaID(t.self.Replica)
	}
	if err := wire.WriteFrame(c, &wire.Envelope{Msg: hello}); err != nil {
		c.Close()
		return nil
	}
	t.mu.Lock()
	if existing, ok := t.conns[to]; ok {
		t.mu.Unlock()
		c.Close()
		return existing
	}
	t.conns[to] = c
	t.mu.Unlock()
	t.wg.Add(1)
	peer := to
	go t.readLoop(c, &peer)
	return c
}

// dropConn discards a broken connection so the next send redials.
func (t *TCPTransport) dropConn(to Addr, c net.Conn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	c.Close()
}

// Close implements Transport. It is idempotent.
func (t *TCPTransport) Close() error {
	var err error
	t.closeOnce.Do(func() {
		close(t.closed)
		err = t.listen.Close()
		t.mu.Lock()
		for _, c := range t.conns {
			c.Close()
		}
		t.conns = make(map[Addr]net.Conn)
		t.mu.Unlock()
	})
	return err
}
