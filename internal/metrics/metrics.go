// Package metrics collects throughput and latency measurements for the
// experiment harness: completion counters with measurement windows (to skip
// warmup/cooldown as the paper does) and latency histograms with percentile
// queries.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// ErrWindowMismatch is returned by Merge for collectors whose measurement
// windows differ: their completion counters cover different spans of
// experiment time, so summing them would compare incomparables.
var ErrWindowMismatch = errors.New("metrics: cannot merge collectors with mismatched measurement windows")

// Collector accumulates per-transaction completions. Not safe for concurrent
// use; the simulator is single-threaded and the runtime wraps it in the
// client library's mutex.
type Collector struct {
	windowStart time.Duration
	windowEnd   time.Duration // 0 = open
	completed   uint64        // completions inside the measurement window
	totalDone   uint64        // completions overall
	viewChanges uint64        // consensus views installed (degradation signal)
	latencies   []time.Duration
	maxSamples  int
	dropped     uint64 // in-window samples lost to the maxSamples cap
}

// NewCollector creates a collector that records latency samples up to
// maxSamples (reservoir-free cap; beyond it only counters advance and
// Dropped counts the loss).
func NewCollector(maxSamples int) *Collector {
	if maxSamples <= 0 {
		maxSamples = 1 << 20
	}
	return &Collector{maxSamples: maxSamples, windowEnd: 0}
}

// SetWindow restricts counting to completions in [start, end) of
// experiment time; end == 0 leaves the window open.
func (c *Collector) SetWindow(start, end time.Duration) {
	c.windowStart, c.windowEnd = start, end
}

// Record notes a transaction that completed at time now with the given
// client-observed latency.
func (c *Collector) Record(now, latency time.Duration) {
	c.totalDone++
	if now < c.windowStart || (c.windowEnd != 0 && now >= c.windowEnd) {
		return
	}
	c.completed++
	if len(c.latencies) < c.maxSamples {
		c.latencies = append(c.latencies, latency)
	} else {
		c.dropped++
	}
}

// Completed returns the number of in-window completions.
func (c *Collector) Completed() uint64 { return c.completed }

// TotalDone returns all completions regardless of window.
func (c *Collector) TotalDone() uint64 { return c.totalDone }

// SampledCount returns the number of latency samples actually retained —
// the population Percentile and MeanLatency answer from.
func (c *Collector) SampledCount() int { return len(c.latencies) }

// Dropped returns how many in-window completions lost their latency
// sample to the maxSamples cap.
func (c *Collector) Dropped() uint64 { return c.dropped }

// Truncated reports whether any latency samples were dropped: percentile
// and mean estimates then describe only the first SampledCount()
// completions of the window, not all of them.
func (c *Collector) Truncated() bool { return c.dropped > 0 }

// SetViewChanges records how many consensus views the measured group has
// installed — primary-failure churn, carried alongside the throughput
// counters so degradation is visible wherever throughput is reported.
func (c *Collector) SetViewChanges(n uint64) { c.viewChanges = n }

// ViewChanges returns the recorded view-change count (summed by Merge).
func (c *Collector) ViewChanges() uint64 { return c.viewChanges }

// Throughput returns in-window completions per second given the window
// length actually observed.
func (c *Collector) Throughput(windowLen time.Duration) float64 {
	if windowLen <= 0 {
		return 0
	}
	return float64(c.completed) / windowLen.Seconds()
}

// MeanLatency returns the average recorded latency.
func (c *Collector) MeanLatency() time.Duration {
	if len(c.latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range c.latencies {
		sum += l
	}
	return sum / time.Duration(len(c.latencies))
}

// Percentile returns the p-th latency percentile (0 < p <= 100).
func (c *Collector) Percentile(p float64) time.Duration {
	if len(c.latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), c.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Clone returns an independent copy of the collector — snapshot reads use
// it so callers can keep recording into the original.
func (c *Collector) Clone() *Collector {
	out := *c
	out.latencies = append([]time.Duration(nil), c.latencies...)
	return &out
}

// Merge combines several collectors — one per shard in a sharded deployment —
// into a single cluster-level collector: completion counters are summed and
// latency samples pooled (capped at the merged collector's sample budget), so
// Throughput/MeanLatency/Percentile answer for the cluster as a whole. All
// inputs must share one measurement window (it becomes the output's window);
// merging collectors whose windows differ would sum counters covering
// different spans of experiment time, so it is rejected with
// ErrWindowMismatch instead of silently producing incomparable totals.
func Merge(cs ...*Collector) (*Collector, error) {
	out := NewCollector(0)
	total := 0
	first := true
	for _, c := range cs {
		if c == nil {
			continue
		}
		if first {
			out.windowStart, out.windowEnd = c.windowStart, c.windowEnd
			first = false
		} else if c.windowStart != out.windowStart || c.windowEnd != out.windowEnd {
			return nil, fmt.Errorf("%w: [%v, %v) vs [%v, %v)", ErrWindowMismatch,
				out.windowStart, out.windowEnd, c.windowStart, c.windowEnd)
		}
		out.completed += c.completed
		out.totalDone += c.totalDone
		out.viewChanges += c.viewChanges
		out.dropped += c.dropped
		total += len(c.latencies)
	}
	// When the pooled samples exceed the budget, thin each input by the same
	// stride rather than truncating later inputs wholesale — every shard must
	// keep contributing to the merged percentiles, or a slow late shard would
	// silently vanish from the cluster tail. Thinned-away samples count as
	// dropped so the merged percentiles report as truncated estimates.
	stride := 1
	if total > out.maxSamples {
		stride = (total + out.maxSamples - 1) / out.maxSamples
	}
	for _, c := range cs {
		if c == nil {
			continue
		}
		for i := 0; i < len(c.latencies); i += stride {
			out.latencies = append(out.latencies, c.latencies[i])
		}
		if stride > 1 {
			out.dropped += uint64(len(c.latencies) - (len(c.latencies)+stride-1)/stride)
		}
	}
	return out, nil
}

// Summary is a human-readable result row. Truncated sample sets are
// marked: their percentiles are estimates over the retained samples only.
func (c *Collector) Summary(windowLen time.Duration) string {
	trunc := ""
	if c.Truncated() {
		trunc = fmt.Sprintf(" (truncated: %d samples dropped)", c.dropped)
	}
	return fmt.Sprintf("throughput=%.0f txn/s mean_lat=%s p50=%s p99=%s n=%d%s",
		c.Throughput(windowLen), c.MeanLatency().Round(time.Microsecond),
		c.Percentile(50).Round(time.Microsecond), c.Percentile(99).Round(time.Microsecond),
		c.completed, trunc)
}
