package metrics

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestWindowedCounting(t *testing.T) {
	c := NewCollector(0)
	c.SetWindow(time.Second, 3*time.Second)
	c.Record(500*time.Millisecond, 10*time.Millisecond)  // before window
	c.Record(1500*time.Millisecond, 20*time.Millisecond) // inside
	c.Record(2500*time.Millisecond, 30*time.Millisecond) // inside
	c.Record(3500*time.Millisecond, 40*time.Millisecond) // after
	if c.Completed() != 2 {
		t.Fatalf("windowed completions = %d, want 2", c.Completed())
	}
	if c.TotalDone() != 4 {
		t.Fatalf("total = %d, want 4", c.TotalDone())
	}
	if got := c.Throughput(2 * time.Second); got != 1.0 {
		t.Fatalf("throughput = %v, want 1.0", got)
	}
	if got := c.MeanLatency(); got != 25*time.Millisecond {
		t.Fatalf("mean latency = %v, want 25ms", got)
	}
}

func TestOpenWindow(t *testing.T) {
	c := NewCollector(0)
	c.SetWindow(0, 0) // open-ended
	for i := 0; i < 5; i++ {
		c.Record(time.Duration(i)*time.Hour, time.Millisecond)
	}
	if c.Completed() != 5 {
		t.Fatalf("open window counted %d, want 5", c.Completed())
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector(0)
	for i := 1; i <= 100; i++ {
		c.Record(0, time.Duration(i)*time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := c.Percentile(tc.p); got != tc.want {
			t.Fatalf("p%.0f = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestEmptyCollectorSafe(t *testing.T) {
	c := NewCollector(0)
	if c.MeanLatency() != 0 || c.Percentile(99) != 0 || c.Throughput(time.Second) != 0 {
		t.Fatal("empty collector should report zeros")
	}
	if c.Throughput(0) != 0 {
		t.Fatal("zero window must not divide by zero")
	}
}

func TestSampleCap(t *testing.T) {
	c := NewCollector(10)
	for i := 0; i < 100; i++ {
		c.Record(0, time.Millisecond)
	}
	if c.Completed() != 100 {
		t.Fatalf("counter stopped at cap: %d", c.Completed())
	}
	if len(c.latencies) != 10 {
		t.Fatalf("stored %d samples, cap was 10", len(c.latencies))
	}
}

func TestSummaryRendering(t *testing.T) {
	c := NewCollector(0)
	c.Record(0, 3*time.Millisecond)
	s := c.Summary(time.Second)
	if s == "" {
		t.Fatal("empty summary")
	}
}

// TestMergeAggregatesShards checks that Merge sums counters and pools
// latency samples across per-shard collectors.
func TestMergeAggregatesShards(t *testing.T) {
	a := NewCollector(0)
	b := NewCollector(0)
	a.SetWindow(0, time.Second)
	b.SetWindow(0, time.Second)
	for i := 0; i < 10; i++ {
		a.Record(time.Millisecond, 1*time.Millisecond)
	}
	for i := 0; i < 30; i++ {
		b.Record(time.Millisecond, 3*time.Millisecond)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed() != 40 || m.TotalDone() != 40 {
		t.Fatalf("merged counters wrong: %d/%d", m.Completed(), m.TotalDone())
	}
	if got := m.Throughput(time.Second); got != 40 {
		t.Fatalf("merged throughput %v", got)
	}
	// Pooled mean: (10*1ms + 30*3ms)/40 = 2.5ms.
	if got := m.MeanLatency(); got != 2500*time.Microsecond {
		t.Fatalf("merged mean latency %v", got)
	}
	if got := m.Percentile(99); got != 3*time.Millisecond {
		t.Fatalf("merged p99 %v", got)
	}
	// Merging nothing (or nils) must not panic.
	empty, err := Merge()
	if err != nil || empty.Completed() != 0 {
		t.Fatalf("empty merge: %v %d", err, empty.Completed())
	}
	withNil, err := Merge(nil, a)
	if err != nil || withNil.Completed() != 10 {
		t.Fatalf("nil-tolerant merge: %v", err)
	}
}

// TestMergeRejectsMismatchedWindows checks that collectors measuring
// different spans of experiment time cannot be summed.
func TestMergeRejectsMismatchedWindows(t *testing.T) {
	a := NewCollector(0)
	b := NewCollector(0)
	a.SetWindow(0, time.Second)
	b.SetWindow(time.Second, 2*time.Second)
	if _, err := Merge(a, b); !errors.Is(err, ErrWindowMismatch) {
		t.Fatalf("want ErrWindowMismatch, got %v", err)
	}
	// Identical windows merge fine, whichever collector comes first.
	b.SetWindow(0, time.Second)
	if _, err := Merge(b, a); err != nil {
		t.Fatal(err)
	}
	// A nil leading collector must not bypass the check.
	c := NewCollector(0)
	c.SetWindow(time.Millisecond, time.Second)
	if _, err := Merge(nil, a, c); !errors.Is(err, ErrWindowMismatch) {
		t.Fatalf("want ErrWindowMismatch after nil, got %v", err)
	}
}

// TestPercentileEdgeCases covers the empty-collector and single-sample
// queries the harness can hit on short or degraded runs.
func TestPercentileEdgeCases(t *testing.T) {
	c := NewCollector(0)
	if c.Percentile(50) != 0 || c.Percentile(99) != 0 || c.MeanLatency() != 0 {
		t.Fatal("empty collector should answer zero percentiles")
	}
	m, err := Merge(c)
	if err != nil || m.Percentile(99) != 0 {
		t.Fatalf("empty merged collector: %v %v", err, m.Percentile(99))
	}
	c.Record(0, 7*time.Millisecond)
	for _, p := range []float64{0.1, 50, 99, 100} {
		if got := c.Percentile(p); got != 7*time.Millisecond {
			t.Fatalf("single-sample p%v = %v", p, got)
		}
	}
}

// TestTruncationIsSignaled checks that sample loss beyond maxSamples is
// visible instead of silently skewing percentiles.
func TestTruncationIsSignaled(t *testing.T) {
	c := NewCollector(4)
	for i := 0; i < 10; i++ {
		c.Record(0, time.Duration(i)*time.Millisecond)
	}
	if c.Truncated() != true || c.Dropped() != 6 || c.SampledCount() != 4 {
		t.Fatalf("truncated=%v dropped=%d sampled=%d", c.Truncated(), c.Dropped(), c.SampledCount())
	}
	if c.Completed() != 10 {
		t.Fatalf("completed = %d", c.Completed())
	}
	if s := c.Summary(time.Second); !strings.Contains(s, "truncated") {
		t.Fatalf("summary should flag truncation: %q", s)
	}
	// Merge carries the truncation signal through, and stride thinning
	// itself counts as truncation.
	big := NewCollector(0)
	for i := 0; i < 10; i++ {
		big.Record(0, time.Millisecond)
	}
	m, err := Merge(c, big)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Truncated() {
		t.Fatal("merged collector should inherit truncation")
	}
	clean := NewCollector(0)
	clean.Record(0, time.Millisecond)
	if m2, err := Merge(clean); err != nil || m2.Truncated() {
		t.Fatalf("clean merge should not be truncated: %v", err)
	}
}

// TestCloneIsIndependent checks snapshot copies do not alias samples.
func TestCloneIsIndependent(t *testing.T) {
	c := NewCollector(0)
	c.Record(0, time.Millisecond)
	snap := c.Clone()
	c.Record(0, 5*time.Millisecond)
	if snap.SampledCount() != 1 || c.SampledCount() != 2 {
		t.Fatalf("clone aliases samples: %d/%d", snap.SampledCount(), c.SampledCount())
	}
	if snap.Percentile(99) != time.Millisecond {
		t.Fatalf("clone p99 = %v", snap.Percentile(99))
	}
}
