package metrics

import (
	"testing"
	"time"
)

func TestWindowedCounting(t *testing.T) {
	c := NewCollector(0)
	c.SetWindow(time.Second, 3*time.Second)
	c.Record(500*time.Millisecond, 10*time.Millisecond)  // before window
	c.Record(1500*time.Millisecond, 20*time.Millisecond) // inside
	c.Record(2500*time.Millisecond, 30*time.Millisecond) // inside
	c.Record(3500*time.Millisecond, 40*time.Millisecond) // after
	if c.Completed() != 2 {
		t.Fatalf("windowed completions = %d, want 2", c.Completed())
	}
	if c.TotalDone() != 4 {
		t.Fatalf("total = %d, want 4", c.TotalDone())
	}
	if got := c.Throughput(2 * time.Second); got != 1.0 {
		t.Fatalf("throughput = %v, want 1.0", got)
	}
	if got := c.MeanLatency(); got != 25*time.Millisecond {
		t.Fatalf("mean latency = %v, want 25ms", got)
	}
}

func TestOpenWindow(t *testing.T) {
	c := NewCollector(0)
	c.SetWindow(0, 0) // open-ended
	for i := 0; i < 5; i++ {
		c.Record(time.Duration(i)*time.Hour, time.Millisecond)
	}
	if c.Completed() != 5 {
		t.Fatalf("open window counted %d, want 5", c.Completed())
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector(0)
	for i := 1; i <= 100; i++ {
		c.Record(0, time.Duration(i)*time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := c.Percentile(tc.p); got != tc.want {
			t.Fatalf("p%.0f = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestEmptyCollectorSafe(t *testing.T) {
	c := NewCollector(0)
	if c.MeanLatency() != 0 || c.Percentile(99) != 0 || c.Throughput(time.Second) != 0 {
		t.Fatal("empty collector should report zeros")
	}
	if c.Throughput(0) != 0 {
		t.Fatal("zero window must not divide by zero")
	}
}

func TestSampleCap(t *testing.T) {
	c := NewCollector(10)
	for i := 0; i < 100; i++ {
		c.Record(0, time.Millisecond)
	}
	if c.Completed() != 100 {
		t.Fatalf("counter stopped at cap: %d", c.Completed())
	}
	if len(c.latencies) != 10 {
		t.Fatalf("stored %d samples, cap was 10", len(c.latencies))
	}
}

func TestSummaryRendering(t *testing.T) {
	c := NewCollector(0)
	c.Record(0, 3*time.Millisecond)
	s := c.Summary(time.Second)
	if s == "" {
		t.Fatal("empty summary")
	}
}

// TestMergeAggregatesShards checks that Merge sums counters and pools
// latency samples across per-shard collectors.
func TestMergeAggregatesShards(t *testing.T) {
	a := NewCollector(0)
	b := NewCollector(0)
	a.SetWindow(0, time.Second)
	b.SetWindow(0, time.Second)
	for i := 0; i < 10; i++ {
		a.Record(time.Millisecond, 1*time.Millisecond)
	}
	for i := 0; i < 30; i++ {
		b.Record(time.Millisecond, 3*time.Millisecond)
	}
	m := Merge(a, b)
	if m.Completed() != 40 || m.TotalDone() != 40 {
		t.Fatalf("merged counters wrong: %d/%d", m.Completed(), m.TotalDone())
	}
	if got := m.Throughput(time.Second); got != 40 {
		t.Fatalf("merged throughput %v", got)
	}
	// Pooled mean: (10*1ms + 30*3ms)/40 = 2.5ms.
	if got := m.MeanLatency(); got != 2500*time.Microsecond {
		t.Fatalf("merged mean latency %v", got)
	}
	if got := m.Percentile(99); got != 3*time.Millisecond {
		t.Fatalf("merged p99 %v", got)
	}
	// Merging nothing (or nils) must not panic.
	if Merge().Completed() != 0 || Merge(nil, a).Completed() != 10 {
		t.Fatal("degenerate merges wrong")
	}
}
