// Package trusted implements the trusted-component abstraction that trust-bft
// and FlexiTrust protocols build on (Definition 1 in the paper): a
// cryptographically secure entity co-located with a replica that provably
// performs a specific computation. Two primitives are provided, matching the
// paper's Section 4.1:
//
//   - Monotonic counters: Append (host-supplied value, MinBFT/TrInc style),
//     AppendF (internally incremented, the FlexiTrust restriction), and
//     Create (fresh counter incarnations for view changes).
//   - Attested append-only logs: Append stores the message, Lookup returns a
//     signed Attest(q, k, x) statement (PBFT-EA/HotStuff-M style).
//
// The package also models the two real-world failure modes the paper's
// analysis turns on:
//
//   - Rollback attacks (Section 6): unless a component is constructed with
//     RollbackProtected, a malicious host can Snapshot and Restore its state,
//     re-enabling equivocation. The byz package uses this to reproduce the
//     MinBFT safety violation.
//   - Access latency (Sections 9.3, 9.9): every component carries an access
//     cost, from ~15µs (counter inside an SGX enclave) to 200ms (TPM). The
//     simulator charges this cost on a serialized per-component resource;
//     the real runtime can optionally sleep it.
package trusted

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"flexitrust/internal/types"
)

// Errors returned by trusted component operations.
var (
	// ErrNonMonotonic is returned when Append is asked to move a counter
	// backwards or reuse a slot.
	ErrNonMonotonic = errors.New("trusted: counter value not monotonically increasing")
	// ErrNoSuchSlot is returned by Lookup for an empty log slot.
	ErrNoSuchSlot = errors.New("trusted: no value at requested log slot")
	// ErrRollbackProtected is returned by Restore on hardware that defends
	// against rollback (persistent counters, TPMs).
	ErrRollbackProtected = errors.New("trusted: component is rollback-protected")
	// ErrNoSuchCounter is returned when a counter id has not been created.
	ErrNoSuchCounter = errors.New("trusted: no such counter")
)

// Profile describes a class of trusted hardware: its access latency and
// whether its state survives (and resists) host-driven rollback. The values
// mirror the paper's Section 9.9 discussion.
type Profile struct {
	Name string
	// AccessCost is the latency of one counter/log operation.
	AccessCost time.Duration
	// RollbackProtected reports whether state rollback is prevented
	// (persistent counters, TPMs) or possible (plain SGX enclave memory).
	RollbackProtected bool
}

// Predefined hardware profiles.
var (
	// ProfileSGXEnclave is a counter kept in enclave memory, as used for
	// the paper's main experiments: a fast ecall round trip. (The paper's
	// Figure 5 microbenchmark implies a costlier per-access path in the
	// authors' instrumented build; EXPERIMENTS.md discusses the
	// discrepancy. We keep one consistent fast-enclave cost.)
	ProfileSGXEnclave = Profile{Name: "sgx-enclave", AccessCost: 25 * time.Microsecond}
	// ProfileADAMCS models the ADAM-CS asynchronous monotonic counter
	// service: <10ms and rollback-protected.
	ProfileADAMCS = Profile{Name: "adam-cs", AccessCost: 5 * time.Millisecond, RollbackProtected: true}
	// ProfileSGXPersistent is an SGX persistent (NVRAM-backed) counter:
	// rollback-protected but tens of milliseconds per access.
	ProfileSGXPersistent = Profile{Name: "sgx-persistent", AccessCost: 60 * time.Millisecond, RollbackProtected: true}
	// ProfileTPM is a TPM monotonic counter: 80-200ms per access.
	ProfileTPM = Profile{Name: "tpm", AccessCost: 120 * time.Millisecond, RollbackProtected: true}
)

// WithAccessCost returns a copy of the profile with the access cost replaced;
// used by the Figure 8 latency sweep.
func (p Profile) WithAccessCost(d time.Duration) Profile {
	p.AccessCost = d
	return p
}

// Component is the host-facing API of one replica's trusted component t_r.
// All methods are safe for concurrent use (the paper's SGX implementation is
// accessed by multiple worker threads).
type Component interface {
	// Host returns the replica this component is attached to.
	Host() types.ReplicaID
	// Profile returns the hardware profile (access cost, rollback class).
	Profile() Profile

	// AppendF implements the FlexiTrust restricted append: the component
	// increments counter q internally and binds the new value to digest x,
	// returning the attestation ⟨Attest(q, k, x)⟩. Counters are created
	// implicitly at value 0 (first attested value is 1).
	AppendF(q uint32, x types.Digest) (*types.Attestation, error)

	// Append implements the classic trust-bft append: the host supplies the
	// new value kNew. kNew == 0 means "next" (⊥ in the paper). If the
	// component keeps a log, x is stored at the slot for later Lookup.
	Append(q uint32, kNew uint64, x types.Digest) (*types.Attestation, error)

	// Lookup returns the attestation for the value stored at slot k of log
	// q, or ErrNoSuchSlot. Only log-keeping components store values;
	// counter-only components return ErrNoSuchSlot for everything.
	Lookup(q uint32, k uint64) (*types.Attestation, error)

	// Create starts a fresh incarnation (epoch) of counter q at value k and
	// returns an attestation of the new (epoch, value). New primaries use
	// it after a view change to restart consensus at the right slot.
	Create(q uint32, k uint64) (*types.Attestation, error)

	// Current returns the current (epoch, value) of counter q.
	Current(q uint32) (epoch uint32, value uint64, err error)

	// Accesses returns the total number of counter/log operations performed,
	// used by the Figure 5 accounting and by tests.
	Accesses() uint64

	// LogSize returns the number of entries currently stored across all
	// logs (the paper's Figure 1 "memory" column).
	LogSize() int

	// Snapshot captures the component's full state. A correct host never
	// calls this; the byz package uses it to mount rollback attacks.
	Snapshot() *State
	// Restore rewinds the component to a snapshot. Rollback-protected
	// hardware returns ErrRollbackProtected.
	Restore(*State) error
}

// State is an opaque snapshot of a component's counters and logs.
type State struct {
	counters map[uint32]counter
	logs     map[uint32]map[uint64]types.Digest
}

// counter is one monotonic counter's state.
type counter struct {
	epoch uint32
	value uint64
}

// logEntryKey identifies a stored log slot.
type logEntryKey struct {
	q uint32
	k uint64
}

// component is the single implementation of Component; KeepLog selects
// between the counter-only (MinBFT) and counter+log (PBFT-EA, TrInc) shapes.
type component struct {
	mu       sync.Mutex
	host     types.ReplicaID
	profile  Profile
	keepLog  bool
	attestor Attestor
	counters map[uint32]counter
	logs     map[uint32]map[uint64]types.Digest
	accesses uint64
	logSize  int
}

// Config selects the shape of a trusted component.
type Config struct {
	Host    types.ReplicaID
	Profile Profile
	// KeepLog stores appended digests for Lookup (trusted-log protocols).
	KeepLog bool
	// Attestor signs attestations; use NewHMACAuthority for a cluster.
	Attestor Attestor
}

// New constructs a trusted component.
func New(cfg Config) Component {
	if cfg.Attestor == nil {
		panic("trusted: Config.Attestor is required")
	}
	return &component{
		host:     cfg.Host,
		profile:  cfg.Profile,
		keepLog:  cfg.KeepLog,
		attestor: cfg.Attestor,
		counters: make(map[uint32]counter),
		logs:     make(map[uint32]map[uint64]types.Digest),
	}
}

func (c *component) Host() types.ReplicaID { return c.host }
func (c *component) Profile() Profile      { return c.profile }

func (c *component) attest(q uint32, ctr counter, x types.Digest) *types.Attestation {
	a := &types.Attestation{
		Replica: c.host,
		Counter: q,
		Epoch:   ctr.epoch,
		Value:   ctr.value,
		Digest:  x,
	}
	c.attestor.Attest(a)
	return a
}

// AppendF implements Component.
func (c *component) AppendF(q uint32, x types.Digest) (*types.Attestation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accesses++
	ctr := c.counters[q]
	ctr.value++
	c.counters[q] = ctr
	if c.keepLog {
		c.storeLocked(q, ctr.value, x)
	}
	return c.attest(q, ctr, x), nil
}

// Append implements Component.
func (c *component) Append(q uint32, kNew uint64, x types.Digest) (*types.Attestation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accesses++
	ctr := c.counters[q]
	switch {
	case kNew == 0:
		ctr.value++
	case kNew > ctr.value:
		ctr.value = kNew
	default:
		return nil, fmt.Errorf("%w: counter %d at %d, requested %d", ErrNonMonotonic, q, ctr.value, kNew)
	}
	c.counters[q] = ctr
	if c.keepLog {
		c.storeLocked(q, ctr.value, x)
	}
	return c.attest(q, ctr, x), nil
}

// storeLocked records x at slot k of log q. Callers hold c.mu.
func (c *component) storeLocked(q uint32, k uint64, x types.Digest) {
	log := c.logs[q]
	if log == nil {
		log = make(map[uint64]types.Digest)
		c.logs[q] = log
	}
	if _, exists := log[k]; !exists {
		c.logSize++
	}
	log[k] = x
}

// Lookup implements Component.
func (c *component) Lookup(q uint32, k uint64) (*types.Attestation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accesses++
	if !c.keepLog {
		return nil, ErrNoSuchSlot
	}
	x, ok := c.logs[q][k]
	if !ok {
		return nil, ErrNoSuchSlot
	}
	ctr := c.counters[q]
	return c.attest(q, counter{epoch: ctr.epoch, value: k}, x), nil
}

// Create implements Component.
func (c *component) Create(q uint32, k uint64) (*types.Attestation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accesses++
	ctr := c.counters[q]
	ctr.epoch++
	ctr.value = k
	c.counters[q] = ctr
	if c.keepLog {
		delete(c.logs, q)
	}
	return c.attest(q, ctr, types.ZeroDigest), nil
}

// Current implements Component.
func (c *component) Current(q uint32) (uint32, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr, ok := c.counters[q]
	if !ok {
		return 0, 0, ErrNoSuchCounter
	}
	return ctr.epoch, ctr.value, nil
}

// Accesses implements Component.
func (c *component) Accesses() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.accesses
}

// LogSize implements Component.
func (c *component) LogSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logSize
}

// Snapshot implements Component.
func (c *component) Snapshot() *State {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &State{
		counters: make(map[uint32]counter, len(c.counters)),
		logs:     make(map[uint32]map[uint64]types.Digest, len(c.logs)),
	}
	for q, ctr := range c.counters {
		s.counters[q] = ctr
	}
	for q, log := range c.logs {
		cp := make(map[uint64]types.Digest, len(log))
		for k, x := range log {
			cp[k] = x
		}
		s.logs[q] = cp
	}
	return s
}

// Restore implements Component.
func (c *component) Restore(s *State) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.profile.RollbackProtected {
		return ErrRollbackProtected
	}
	c.counters = make(map[uint32]counter, len(s.counters))
	for q, ctr := range s.counters {
		c.counters[q] = ctr
	}
	c.logs = make(map[uint32]map[uint64]types.Digest, len(s.logs))
	c.logSize = 0
	for q, log := range s.logs {
		cp := make(map[uint64]types.Digest, len(log))
		for k, x := range log {
			cp[k] = x
			c.logSize++
		}
		c.logs[q] = cp
	}
	return nil
}

// Attestor signs and verifies trusted-component attestations. The hardware
// vendor provisions each component with an attestation key whose public part
// (or, for the HMAC scheme, a shared verification secret) is known to every
// replica.
type Attestor interface {
	// Attest fills a.Proof with a signature over a.Bytes().
	Attest(a *types.Attestation)
	// Verify checks that a.Proof is a valid signature by a.Replica's
	// trusted component over a.Bytes().
	Verify(a *types.Attestation) bool
}

// HMACAuthority is a cluster-wide attestation authority using per-component
// HMAC-SHA256 keys. Every replica holds the verification keys (the paper's
// model: attestations are verifiable by all). The per-component signing key
// is held *only* by the component; the host replica cannot forge
// attestations, which is exactly the non-equivocation guarantee the
// protocols need.
type HMACAuthority struct {
	keys [][]byte
}

// NewHMACAuthority derives component keys for n replicas from seed.
func NewHMACAuthority(seed int64, n int) *HMACAuthority {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = make([]byte, 32)
		rng.Read(keys[i])
	}
	return &HMACAuthority{keys: keys}
}

// For returns the Attestor bound to replica r's component.
func (h *HMACAuthority) For(r types.ReplicaID) Attestor {
	return &hmacAttestor{auth: h, self: r}
}

// Verify checks an attestation from any component in the cluster.
func (h *HMACAuthority) Verify(a *types.Attestation) bool {
	if a == nil || int(a.Replica) < 0 || int(a.Replica) >= len(h.keys) {
		return false
	}
	m := hmac.New(sha256.New, h.keys[a.Replica])
	m.Write(a.Bytes())
	return hmac.Equal(m.Sum(nil), a.Proof)
}

// hmacAttestor signs with one component's key and verifies with any.
type hmacAttestor struct {
	auth *HMACAuthority
	self types.ReplicaID
}

// Attest implements Attestor.
func (h *hmacAttestor) Attest(a *types.Attestation) {
	m := hmac.New(sha256.New, h.auth.keys[h.self])
	m.Write(a.Bytes())
	a.Proof = m.Sum(nil)
}

// Verify implements Attestor.
func (h *hmacAttestor) Verify(a *types.Attestation) bool { return h.auth.Verify(a) }
