package trusted

import "flexitrust/internal/types"

// Counter-identifier namespacing.
//
// A protocol instance names its counters with small local identifiers
// (Flexi-BFT's q = 0, MinBFT's seq/usig counters 0 and 1). When two protocol
// instances share one trusted component — the sharded deployments built by
// internal/shard co-host one consensus group per shard on each machine — those
// local identifiers would alias: both groups would increment the *same*
// monotonic counter, interleaving their sequence numbers and stalling both.
//
// Namespaced fixes the identity: it returns a view of a component whose
// counter and log identifiers are remapped into a private 16-bit namespace
// (q' = ns<<16 | q), so instance-local identifiers can never collide across
// groups. The attestations a namespaced view returns carry the *local*
// identifier again, keeping the protocol code namespace-oblivious; their
// proofs, however, bind the namespaced identifier — which is exactly the
// non-equivocation property sharding needs, since an attestation minted for
// shard 3's counter 0 must not verify as shard 5's. Verifiers therefore remap
// with MapAttestation before checking the proof; the engine environments
// (internal/sim, internal/runtime) do this when engine.Config.TrustedNamespace
// is set.

// nsShift positions the namespace in the top 16 bits of the wire identifier.
const nsShift = 16

// localQMask masks an identifier down to its instance-local 16 bits. Local
// identifiers above 16 bits are reserved for namespacing and masked off.
const localQMask = (1 << nsShift) - 1

// Namespaced returns a view of c whose counter/log identifiers live in the
// private namespace ns. Namespace 0 is the identity view (c itself).
func Namespaced(c Component, ns uint16) Component {
	if ns == 0 {
		return c
	}
	return &nsComponent{inner: c, ns: ns}
}

// MapAttestation returns a copy of a with its counter identifier remapped
// into namespace ns — the form the proof was minted over. Verifiers of
// attestations produced through a Namespaced view must remap before checking
// the proof. ns == 0 (or a nil attestation) returns a unchanged.
func MapAttestation(a *types.Attestation, ns uint16) *types.Attestation {
	if ns == 0 || a == nil {
		return a
	}
	m := *a
	m.Counter = uint32(ns)<<nsShift | (a.Counter & localQMask)
	return &m
}

// nsComponent remaps identifiers on the way in and restores the local
// identifier on returned attestations.
type nsComponent struct {
	inner Component
	ns    uint16
}

// mapQ moves a local identifier into the namespace.
func (n *nsComponent) mapQ(q uint32) uint32 { return uint32(n.ns)<<nsShift | (q & localQMask) }

// unmap copies an attestation and restores the instance-local identifier.
// The proof still binds the namespaced identifier (see MapAttestation).
func (n *nsComponent) unmap(a *types.Attestation) *types.Attestation {
	if a == nil {
		return nil
	}
	m := *a
	m.Counter = a.Counter & localQMask
	return &m
}

func (n *nsComponent) Host() types.ReplicaID { return n.inner.Host() }
func (n *nsComponent) Profile() Profile      { return n.inner.Profile() }

// AppendF implements Component.
func (n *nsComponent) AppendF(q uint32, x types.Digest) (*types.Attestation, error) {
	a, err := n.inner.AppendF(n.mapQ(q), x)
	return n.unmap(a), err
}

// Append implements Component.
func (n *nsComponent) Append(q uint32, kNew uint64, x types.Digest) (*types.Attestation, error) {
	a, err := n.inner.Append(n.mapQ(q), kNew, x)
	return n.unmap(a), err
}

// Lookup implements Component.
func (n *nsComponent) Lookup(q uint32, k uint64) (*types.Attestation, error) {
	a, err := n.inner.Lookup(n.mapQ(q), k)
	return n.unmap(a), err
}

// Create implements Component.
func (n *nsComponent) Create(q uint32, k uint64) (*types.Attestation, error) {
	a, err := n.inner.Create(n.mapQ(q), k)
	return n.unmap(a), err
}

// Current implements Component.
func (n *nsComponent) Current(q uint32) (uint32, uint64, error) {
	return n.inner.Current(n.mapQ(q))
}

func (n *nsComponent) Accesses() uint64       { return n.inner.Accesses() }
func (n *nsComponent) LogSize() int           { return n.inner.LogSize() }
func (n *nsComponent) Snapshot() *State       { return n.inner.Snapshot() }
func (n *nsComponent) Restore(s *State) error { return n.inner.Restore(s) }
