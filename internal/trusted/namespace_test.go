package trusted

import (
	"sync"
	"testing"

	"flexitrust/internal/types"
)

// digestOf builds a distinct digest per byte tag.
func digestOf(tag byte) types.Digest {
	var d types.Digest
	d[0] = tag
	return d
}

// TestSharedComponentAliasesCounters is the regression the namespacing exists
// for: two protocol instances sharing one raw component and both using the
// conventional counter id 0 observe each other's increments.
func TestSharedComponentAliasesCounters(t *testing.T) {
	auth := NewHMACAuthority(7, 1)
	tc := New(Config{Host: 0, Profile: ProfileSGXEnclave, Attestor: auth.For(0)})

	// Instance A and instance B interleave on the same counter.
	a1, err := tc.AppendF(0, digestOf(1))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := tc.AppendF(0, digestOf(2))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Value != 1 || b1.Value != 2 {
		t.Fatalf("expected aliased counter values 1,2; got %d,%d", a1.Value, b1.Value)
	}
}

// TestNamespacedCountersDoNotAlias checks that namespaced views of one shared
// component give each instance an independent counter space, while proofs
// stay bound to the namespace (cross-namespace replay fails verification).
func TestNamespacedCountersDoNotAlias(t *testing.T) {
	auth := NewHMACAuthority(7, 1)
	tc := New(Config{Host: 0, Profile: ProfileSGXEnclave, Attestor: auth.For(0)})
	g1 := Namespaced(tc, 1)
	g2 := Namespaced(tc, 2)

	a1, err := g1.AppendF(0, digestOf(1))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := g2.AppendF(0, digestOf(2))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Value != 1 || a2.Value != 1 {
		t.Fatalf("namespaced counters aliased: values %d,%d (want 1,1)", a1.Value, a2.Value)
	}
	if a1.Counter != 0 || a2.Counter != 0 {
		t.Fatalf("namespaced views must return local ids; got %d,%d", a1.Counter, a2.Counter)
	}

	// Current() goes through the same mapping.
	if _, v, err := g1.Current(0); err != nil || v != 1 {
		t.Fatalf("g1 Current = %d,%v; want 1", v, err)
	}
	if _, err := g1.AppendF(0, digestOf(3)); err != nil {
		t.Fatal(err)
	}
	if _, v, _ := g2.Current(0); v != 1 {
		t.Fatalf("g2 observed g1's increment: Current = %d", v)
	}

	// The proof binds the namespaced identifier: it verifies only after
	// remapping with the owning namespace.
	if auth.Verify(a1) {
		t.Fatal("attestation with local id must not verify raw")
	}
	if !auth.Verify(MapAttestation(a1, 1)) {
		t.Fatal("attestation must verify under its own namespace")
	}
	if auth.Verify(MapAttestation(a1, 2)) {
		t.Fatal("attestation must not verify under another namespace")
	}
}

// TestNamespaceZeroIsIdentity checks that namespace 0 changes nothing, so
// single-group deployments keep today's behavior and attestations.
func TestNamespaceZeroIsIdentity(t *testing.T) {
	auth := NewHMACAuthority(7, 1)
	tc := New(Config{Host: 0, Profile: ProfileSGXEnclave, Attestor: auth.For(0)})
	if Namespaced(tc, 0) != tc {
		t.Fatal("namespace 0 must return the component itself")
	}
	a, err := tc.AppendF(0, digestOf(9))
	if err != nil {
		t.Fatal(err)
	}
	if MapAttestation(a, 0) != a {
		t.Fatal("MapAttestation with ns 0 must be the identity")
	}
	if !auth.Verify(a) {
		t.Fatal("un-namespaced attestation must verify directly")
	}
}

// TestNamespacedConcurrentIsolation hammers one shared component from
// several namespaced views at once — the deployment shape of the sharded
// transaction layer, where consensus groups (namespaces 1..S) and the
// transaction coordinator (namespace 0xFFFF) co-host one component. Under
// -race this exercises the component's locking; the assertions check that
// heavy cross-namespace concurrency never bleeds one view's counter into
// another's.
func TestNamespacedConcurrentIsolation(t *testing.T) {
	auth := NewHMACAuthority(7, 1)
	tc := New(Config{Host: 0, Profile: ProfileSGXEnclave, Attestor: auth.For(0)})

	// Groups 1..4 plus the coordinator namespace at the top of the space.
	namespaces := []uint16{1, 2, 3, 4, 0xFFFF}
	perView := 500
	views := make([]Component, len(namespaces))
	for i, ns := range namespaces {
		views[i] = Namespaced(tc, ns)
	}
	var wg sync.WaitGroup
	lasts := make([]*types.Attestation, len(views))
	for i, v := range views {
		i, v := i, v
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perView; k++ {
				a, err := v.AppendF(0, digestOf(byte(i)))
				if err != nil {
					t.Errorf("view %d: %v", i, err)
					return
				}
				lasts[i] = a
			}
		}()
	}
	wg.Wait()

	for i, v := range views {
		if _, val, err := v.Current(0); err != nil || val != uint64(perView) {
			t.Fatalf("namespace %#x counter = %d (%v), want %d — cross-namespace bleed",
				namespaces[i], val, err, perView)
		}
		if lasts[i].Value != uint64(perView) {
			t.Fatalf("namespace %#x last attested value %d, want %d", namespaces[i], lasts[i].Value, perView)
		}
		// Each view's attestation verifies only under its own namespace.
		if !auth.Verify(MapAttestation(lasts[i], namespaces[i])) {
			t.Fatalf("namespace %#x attestation does not verify under its namespace", namespaces[i])
		}
		other := namespaces[(i+1)%len(namespaces)]
		if auth.Verify(MapAttestation(lasts[i], other)) {
			t.Fatalf("namespace %#x attestation verifies under %#x", namespaces[i], other)
		}
	}
	if got := tc.Accesses(); got != uint64(len(views)*perView) {
		t.Fatalf("component accesses = %d, want %d", got, len(views)*perView)
	}
}
