package trusted

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"flexitrust/internal/crypto"
	"flexitrust/internal/types"
)

func newTestComponent(t *testing.T, keepLog bool, profile Profile) (Component, *HMACAuthority) {
	t.Helper()
	auth := NewHMACAuthority(42, 4)
	c := New(Config{Host: 1, Profile: profile, KeepLog: keepLog, Attestor: auth.For(1)})
	return c, auth
}

func TestAppendFIncrementsContiguously(t *testing.T) {
	c, auth := newTestComponent(t, false, ProfileSGXEnclave)
	for want := uint64(1); want <= 100; want++ {
		a, err := c.AppendF(0, crypto.HashBytes([]byte{byte(want)}))
		if err != nil {
			t.Fatalf("AppendF(%d): %v", want, err)
		}
		if a.Value != want {
			t.Fatalf("AppendF returned value %d, want %d", a.Value, want)
		}
		if !auth.Verify(a) {
			t.Fatalf("attestation for value %d does not verify", want)
		}
	}
}

func TestAppendFIndependentCounters(t *testing.T) {
	c, _ := newTestComponent(t, false, ProfileSGXEnclave)
	for i := 0; i < 5; i++ {
		if a, _ := c.AppendF(7, types.ZeroDigest); a.Value != uint64(i+1) {
			t.Fatalf("counter 7 value = %d, want %d", a.Value, i+1)
		}
	}
	a, _ := c.AppendF(9, types.ZeroDigest)
	if a.Value != 1 {
		t.Fatalf("fresh counter 9 value = %d, want 1", a.Value)
	}
}

func TestAppendHostSuppliedValues(t *testing.T) {
	c, _ := newTestComponent(t, false, ProfileSGXEnclave)
	a, err := c.Append(0, 5, types.ZeroDigest)
	if err != nil || a.Value != 5 {
		t.Fatalf("Append(5) = %v, %v; want value 5", a, err)
	}
	// ⊥ means next.
	a, err = c.Append(0, 0, types.ZeroDigest)
	if err != nil || a.Value != 6 {
		t.Fatalf("Append(⊥) = %v, %v; want value 6", a, err)
	}
	// Going backwards or reusing must fail.
	for _, k := range []uint64{1, 5, 6} {
		if _, err := c.Append(0, k, types.ZeroDigest); !errors.Is(err, ErrNonMonotonic) {
			t.Fatalf("Append(%d) err = %v, want ErrNonMonotonic", k, err)
		}
	}
	// Skipping forward is allowed; the skipped slots are burned.
	if a, err = c.Append(0, 100, types.ZeroDigest); err != nil || a.Value != 100 {
		t.Fatalf("Append(100) = %v, %v; want value 100", a, err)
	}
}

func TestLookupOnLogComponent(t *testing.T) {
	c, auth := newTestComponent(t, true, ProfileSGXEnclave)
	d1 := crypto.HashBytes([]byte("tx1"))
	d2 := crypto.HashBytes([]byte("tx2"))
	if _, err := c.Append(3, 0, d1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(3, 0, d2); err != nil {
		t.Fatal(err)
	}
	a, err := c.Lookup(3, 1)
	if err != nil {
		t.Fatalf("Lookup(3,1): %v", err)
	}
	if a.Digest != d1 || a.Value != 1 {
		t.Fatalf("Lookup(3,1) = %v, want digest %s at 1", a, d1)
	}
	if !auth.Verify(a) {
		t.Fatal("lookup attestation does not verify")
	}
	if _, err := c.Lookup(3, 9); !errors.Is(err, ErrNoSuchSlot) {
		t.Fatalf("Lookup empty slot err = %v, want ErrNoSuchSlot", err)
	}
	if got := c.LogSize(); got != 2 {
		t.Fatalf("LogSize = %d, want 2", got)
	}
}

func TestCounterOnlyComponentKeepsNoLog(t *testing.T) {
	c, _ := newTestComponent(t, false, ProfileSGXEnclave)
	c.Append(0, 0, crypto.HashBytes([]byte("x")))
	if _, err := c.Lookup(0, 1); !errors.Is(err, ErrNoSuchSlot) {
		t.Fatalf("Lookup on counter-only component err = %v, want ErrNoSuchSlot", err)
	}
	if got := c.LogSize(); got != 0 {
		t.Fatalf("LogSize = %d, want 0 for counter-only component", got)
	}
}

func TestCreateBumpsEpochAndResetsValue(t *testing.T) {
	c, auth := newTestComponent(t, false, ProfileSGXEnclave)
	c.AppendF(0, types.ZeroDigest)
	c.AppendF(0, types.ZeroDigest)
	a, err := c.Create(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Epoch != 1 || a.Value != 10 {
		t.Fatalf("Create = epoch %d value %d, want epoch 1 value 10", a.Epoch, a.Value)
	}
	if !auth.Verify(a) {
		t.Fatal("create attestation does not verify")
	}
	next, _ := c.AppendF(0, types.ZeroDigest)
	if next.Epoch != 1 || next.Value != 11 {
		t.Fatalf("post-Create AppendF = epoch %d value %d, want 1/11", next.Epoch, next.Value)
	}
}

func TestRollbackOnUnprotectedHardware(t *testing.T) {
	c, _ := newTestComponent(t, false, ProfileSGXEnclave)
	c.AppendF(0, types.ZeroDigest)
	snap := c.Snapshot()
	c.AppendF(0, types.ZeroDigest)
	c.AppendF(0, types.ZeroDigest)
	if err := c.Restore(snap); err != nil {
		t.Fatalf("Restore on SGX profile: %v", err)
	}
	// After rollback the component re-issues value 2: equivocation enabled.
	a, _ := c.AppendF(0, types.ZeroDigest)
	if a.Value != 2 {
		t.Fatalf("post-rollback AppendF value = %d, want 2 (reissued)", a.Value)
	}
}

func TestRollbackBlockedOnProtectedHardware(t *testing.T) {
	for _, p := range []Profile{ProfileTPM, ProfileSGXPersistent, ProfileADAMCS} {
		c, _ := newTestComponent(t, false, p)
		c.AppendF(0, types.ZeroDigest)
		snap := c.Snapshot()
		c.AppendF(0, types.ZeroDigest)
		if err := c.Restore(snap); !errors.Is(err, ErrRollbackProtected) {
			t.Fatalf("%s: Restore err = %v, want ErrRollbackProtected", p.Name, err)
		}
	}
}

func TestAttestationForgeryRejected(t *testing.T) {
	c, auth := newTestComponent(t, false, ProfileSGXEnclave)
	a, _ := c.AppendF(0, crypto.HashBytes([]byte("real")))
	forged := *a
	forged.Value = 99 // host tries to claim a different binding
	if auth.Verify(&forged) {
		t.Fatal("forged attestation (altered value) verified")
	}
	forged = *a
	forged.Digest = crypto.HashBytes([]byte("fake"))
	if auth.Verify(&forged) {
		t.Fatal("forged attestation (altered digest) verified")
	}
	forged = *a
	forged.Replica = 2 // replay under another component's identity
	if auth.Verify(&forged) {
		t.Fatal("forged attestation (altered issuer) verified")
	}
	if !auth.Verify(a) {
		t.Fatal("genuine attestation rejected")
	}
}

func TestAccessesAccounting(t *testing.T) {
	c, _ := newTestComponent(t, true, ProfileSGXEnclave)
	c.AppendF(0, types.ZeroDigest)
	c.Append(0, 0, types.ZeroDigest)
	c.Lookup(0, 1)
	c.Create(1, 0)
	if got := c.Accesses(); got != 4 {
		t.Fatalf("Accesses = %d, want 4", got)
	}
}

func TestConcurrentAppendFUniqueValues(t *testing.T) {
	c, _ := newTestComponent(t, false, ProfileSGXEnclave)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	values := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a, err := c.AppendF(0, types.ZeroDigest)
				if err != nil {
					t.Errorf("AppendF: %v", err)
					return
				}
				values[w] = append(values[w], a.Value)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, vs := range values {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d issued twice under concurrency", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("issued %d distinct values, want %d", len(seen), workers*per)
	}
}

// Property: no matter the sequence of valid Append/AppendF calls, attested
// values on a counter are strictly increasing — the core non-equivocation
// invariant every trust-bft protocol relies on.
func TestCounterMonotonicityProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		auth := NewHMACAuthority(1, 1)
		c := New(Config{Host: 0, Profile: ProfileSGXEnclave, Attestor: auth.For(0)})
		last := uint64(0)
		for _, op := range ops {
			var a *types.Attestation
			var err error
			if op%2 == 0 {
				a, err = c.AppendF(0, types.ZeroDigest)
			} else {
				a, err = c.Append(0, uint64(op), types.ZeroDigest)
			}
			if err != nil {
				continue // rejected non-monotonic request; state unchanged
			}
			if a.Value <= last {
				return false
			}
			last = a.Value
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Lookup always returns exactly what was appended at that slot,
// and slots are never silently overwritten by later appends.
func TestLogBindingProperty(t *testing.T) {
	prop := func(payloads [][]byte) bool {
		auth := NewHMACAuthority(1, 1)
		c := New(Config{Host: 0, Profile: ProfileSGXEnclave, KeepLog: true, Attestor: auth.For(0)})
		want := make(map[uint64]types.Digest)
		for _, p := range payloads {
			d := crypto.HashBytes(p)
			a, err := c.Append(5, 0, d)
			if err != nil {
				return false
			}
			want[a.Value] = d
		}
		for k, d := range want {
			a, err := c.Lookup(5, k)
			if err != nil || a.Digest != d || !auth.Verify(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileWithAccessCost(t *testing.T) {
	orig := ProfileSGXEnclave.AccessCost
	p := ProfileSGXEnclave.WithAccessCost(3 * time.Millisecond)
	if p.AccessCost != 3*time.Millisecond {
		t.Fatalf("AccessCost = %v, want 3ms", p.AccessCost)
	}
	if p.Name != ProfileSGXEnclave.Name || ProfileSGXEnclave.AccessCost != orig {
		t.Fatal("WithAccessCost must not mutate the original profile")
	}
}

func TestCurrentReportsState(t *testing.T) {
	c, _ := newTestComponent(t, false, ProfileSGXEnclave)
	if _, _, err := c.Current(0); !errors.Is(err, ErrNoSuchCounter) {
		t.Fatalf("Current on missing counter err = %v, want ErrNoSuchCounter", err)
	}
	c.AppendF(0, types.ZeroDigest)
	c.AppendF(0, types.ZeroDigest)
	epoch, val, err := c.Current(0)
	if err != nil || epoch != 0 || val != 2 {
		t.Fatalf("Current = (%d,%d,%v), want (0,2,nil)", epoch, val, err)
	}
}
