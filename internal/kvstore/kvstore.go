// Package kvstore implements the replicated state machine the paper
// evaluates: a YCSB-style key-value store over 600k records. Execution is
// deterministic — identical operation sequences produce identical state
// digests on every replica — which is what lets checkpoint and safety tests
// compare replicas by digest.
package kvstore

import (
	"encoding/binary"
	"fmt"

	"flexitrust/internal/crypto"
	"flexitrust/internal/types"
)

// OpCode enumerates state machine operations.
type OpCode uint8

// Supported operations (the YCSB core workload mix).
const (
	OpNoop OpCode = iota // no-op (view-change gap filler)
	OpRead
	OpUpdate
	OpInsert
	OpScan // short range scan
	OpRMW  // read-modify-write

	// Transactional operations (cross-shard 2PC; see txn.go). Prepare
	// installs per-key intents, Commit/Abort resolve them, TxnRead is the
	// intent-aware read that reports a pending intent explicitly.
	OpTxnPrepare
	OpTxnCommit
	OpTxnAbort
	OpTxnRead

	// Range-handoff operations (live shard rebalancing; see rangeops.go).
	// Freeze is the source-side prepare (claim + deterministic export of a
	// hash range), Install stages one export chunk on the destination; the
	// decision rides the shared OpTxnCommit/OpTxnAbort id space. TxnCompact
	// prunes decision history at or below the stability watermark.
	OpRangeFreeze
	OpRangeInstall
	OpTxnCompact

	// Read-lease operations (leader read leases; see readview.go and the
	// "Leased reads" section of the repository doc). Grant allocates the
	// next monotone lease epoch through consensus and marks it active;
	// Revoke deactivates it. OpRangeFreeze also deactivates the lease —
	// a range's ownership going into flight invalidates local serving.
	OpLeaseGrant
	OpLeaseRevoke
)

// Op is one key-value operation. Encode/Decode give it a compact canonical
// wire form used both as the request payload and as the digest input.
type Op struct {
	Code  OpCode
	Key   uint64
	Value []byte
	Count uint16 // scan length
}

// Encode serializes the operation.
func (o *Op) Encode() []byte {
	buf := make([]byte, 0, 1+8+2+2+len(o.Value))
	buf = append(buf, byte(o.Code))
	buf = binary.BigEndian.AppendUint64(buf, o.Key)
	buf = binary.BigEndian.AppendUint16(buf, o.Count)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(o.Value)))
	buf = append(buf, o.Value...)
	return buf
}

// Decode parses an operation into o, returning an error on malformed input;
// a byzantine client must not be able to crash a replica. The decoded Value
// aliases b. Decoding into a caller-owned Op keeps the state machine's
// per-operation hot path allocation-free (Apply runs once per request on
// every replica).
func (o *Op) Decode(b []byte) error {
	if len(b) < 13 {
		return fmt.Errorf("kvstore: op too short (%d bytes)", len(b))
	}
	vlen := int(binary.BigEndian.Uint16(b[11:13]))
	if len(b) != 13+vlen {
		return fmt.Errorf("kvstore: op length mismatch: have %d want %d", len(b), 13+vlen)
	}
	o.Code = OpCode(b[0])
	o.Key = binary.BigEndian.Uint64(b[1:9])
	o.Count = binary.BigEndian.Uint16(b[9:11])
	o.Value = nil
	if vlen > 0 {
		o.Value = b[13 : 13+vlen]
	}
	return nil
}

// DecodeOp parses an operation, returning an error on malformed input.
func DecodeOp(b []byte) (*Op, error) {
	o := new(Op)
	if err := o.Decode(b); err != nil {
		return nil, err
	}
	return o, nil
}

// KeyHash is the canonical 64-bit mix of a store key (a splitmix64
// finalizer). It is the one hash every layer that partitions the keyspace
// must agree on — the shard router derives key→shard placement from it — so
// that routing stays deterministic across processes and releases. YCSB-style
// workloads use dense small integers as keys; the finalizer spreads them
// uniformly across the 64-bit space.
func KeyHash(key uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Store is the key-value state machine. It is not safe for concurrent use;
// the engine executes batches single-threaded in sequence-number order, as
// RSM semantics demand.
//
// The initial database (recordCount records, the paper uses 600k) is
// materialized lazily: a key below recordCount that has never been written
// reads as a deterministic function of the key. This keeps per-replica
// memory proportional to the write set, which is what lets the simulator
// hold 97 replicas × 600k records without preloading 97 copies.
type Store struct {
	recordCount uint64
	records     map[uint64][]byte // written keys only
	// stateDigest is a running hash chain over applied batch digests. It is
	// what checkpoints advertise: equal digests ⟺ equal histories.
	stateDigest types.Digest
	applied     uint64

	// Transactional state (cross-shard 2PC, see txn.go): pending per-key
	// intents, the keys each in-flight transaction claimed on this shard,
	// and the decisions already applied (kept so retried or late
	// Prepare/Commit/Abort operations answer deterministically instead of
	// acting twice). txnDecided is pruned below txnStable, the
	// coordinator-gossiped stability watermark: ids at or below it can no
	// longer be retried by a correct coordinator, and any operation naming
	// one answers TxnStale (OpTxnCompact advances the watermark).
	intents    map[uint64]intent
	txnKeys    map[uint64][]uint64
	txnDecided map[uint64]bool
	txnStable  uint64

	// Range-handoff state (live rebalancing, see rangeops.go): outbound
	// ranges frozen for export, inbound ranges staged for install, and the
	// intervals this store has released to other groups (operations on
	// released keys answer WrongShard deterministically).
	outbound map[uint64]HashRange
	inbound  map[uint64]*rangeStage
	released []HashRange

	// Read-lease state (deterministic half; the clock-bound half lives in
	// engine.LeaseTracker): the monotone epoch OpLeaseGrant allocates and
	// whether the latest epoch is still active. Every replica agrees on
	// both because they only change through consensus.
	leaseEpoch  uint64
	leaseActive bool

	// Read-view maintenance (see readview.go): keys whose records changed
	// since the last SyncView, and whether the next sync must rebuild the
	// mirror wholesale (after Restore or a range settlement). viewTouched
	// stays nil — and mutation tracking free — until the first SyncView.
	viewTouched map[uint64]struct{}
	viewFull    bool
}

// New creates a store whose initial state holds recordCount records with
// deterministic per-key default values, so replicas start identical without
// shipping a snapshot.
func New(recordCount int) *Store {
	return &Store{
		recordCount: uint64(recordCount),
		records:     make(map[uint64][]byte),
		intents:     make(map[uint64]intent),
		txnKeys:     make(map[uint64][]uint64),
		txnDecided:  make(map[uint64]bool),
		outbound:    make(map[uint64]HashRange),
		inbound:     make(map[uint64]*rangeStage),
	}
}

// get returns the current value of key and whether it exists.
func (s *Store) get(key uint64) ([]byte, bool) {
	if v, ok := s.records[key]; ok {
		return v, true
	}
	if key < s.recordCount {
		return defaultValue(key), true
	}
	return nil, false
}

// exists reports whether key currently exists.
func (s *Store) exists(key uint64) bool {
	if _, ok := s.records[key]; ok {
		return true
	}
	return key < s.recordCount
}

// writeRefused applies the deterministic write-admission checks shared by
// the plain write operations: a released key answers WrongShard (the
// caller's placement is stale), a key inside a frozen outbound range
// answers RangeMigrating (retry after the handoff decides), and a key under
// a transactional intent answers TxnConflict. ok is true when the write may
// proceed.
func (s *Store) writeRefused(key uint64) ([]byte, bool) {
	if s.releasedKey(key) {
		return []byte(WrongShard), false
	}
	if s.frozenOut(key) || s.stagedIn(key) {
		return []byte(RangeMigrating), false
	}
	if _, held := s.intents[key]; held {
		return []byte(TxnConflict), false
	}
	return nil, true
}

// defaultValue derives the initial value for a key.
func defaultValue(key uint64) []byte {
	v := make([]byte, 8)
	binary.BigEndian.PutUint64(v, key^0x5bd1e995)
	return v
}

// Applied returns the number of operations applied so far.
func (s *Store) Applied() uint64 { return s.applied }

// WrittenKeys returns the number of explicitly written records.
func (s *Store) WrittenKeys() int { return len(s.records) }

// Apply executes a single operation and returns its result bytes. Malformed
// operations yield an error result (deterministically) rather than failure:
// all replicas must produce the same answer for any input.
func (s *Store) Apply(opBytes []byte) []byte {
	s.applied++
	var op Op // stack-decoded: Apply is the per-request hot path
	if err := op.Decode(opBytes); err != nil {
		return []byte("ERR")
	}
	switch op.Code {
	case OpNoop:
		return nil
	case OpTxnPrepare, OpTxnCommit, OpTxnAbort, OpTxnRead:
		return s.applyTxnOp(&op)
	case OpRangeFreeze:
		return s.applyRangeFreeze(op.Value)
	case OpRangeInstall:
		return s.applyRangeInstall(op.Value)
	case OpTxnCompact:
		return s.applyTxnCompact(op.Value)
	case OpLeaseGrant:
		// The payload carries the lease duration (ns) for the hosting
		// substrate; the store only allocates the epoch and answers with
		// it, so the granting primary learns which epoch it now holds.
		if len(op.Value) != 8 {
			return []byte("ERR")
		}
		s.leaseEpoch++
		s.leaseActive = true
		return binary.BigEndian.AppendUint64(nil, s.leaseEpoch)
	case OpLeaseRevoke:
		s.leaseActive = false
		return []byte("OK")
	case OpRead:
		if s.releasedKey(op.Key) {
			return []byte(WrongShard)
		}
		if s.stagedIn(op.Key) {
			return []byte(RangeMigrating)
		}
		if v, ok := s.get(op.Key); ok {
			return v
		}
		return []byte("NOTFOUND")
	case OpUpdate:
		if res, ok := s.writeRefused(op.Key); !ok {
			return res
		}
		if !s.exists(op.Key) {
			return []byte("NOTFOUND")
		}
		s.records[op.Key] = append([]byte(nil), op.Value...)
		s.touch(op.Key)
		return []byte("OK")
	case OpInsert:
		if res, ok := s.writeRefused(op.Key); !ok {
			return res
		}
		s.records[op.Key] = append([]byte(nil), op.Value...)
		s.touch(op.Key)
		return []byte("OK")
	case OpScan:
		// Ownership is checked on the start key only: scans are routed by
		// it, and a scan straddling a placement boundary is already
		// approximate by design.
		if s.releasedKey(op.Key) {
			return []byte(WrongShard)
		}
		if s.stagedIn(op.Key) {
			return []byte(RangeMigrating)
		}
		// Deterministic short scan over the contiguous key space. Keys whose
		// interval was released (their records were deleted on handoff
		// commit — the lazy default would fabricate a value the destination
		// may have diverged from) or is inbound-staged (not owned yet) are
		// omitted rather than counted.
		n := int(op.Count)
		if n > 64 {
			n = 64
		}
		found := 0
		for k := op.Key; k < op.Key+uint64(n); k++ {
			if s.releasedKey(k) || s.stagedIn(k) {
				continue
			}
			if s.exists(k) {
				found++
			}
		}
		out := make([]byte, 4)
		binary.BigEndian.PutUint32(out, uint32(found))
		return out
	case OpRMW:
		if res, ok := s.writeRefused(op.Key); !ok {
			return res
		}
		v, ok := s.get(op.Key)
		if !ok {
			return []byte("NOTFOUND")
		}
		nv := make([]byte, len(v))
		copy(nv, v)
		for i := range nv {
			if i < len(op.Value) {
				nv[i] ^= op.Value[i]
			}
		}
		s.records[op.Key] = nv
		s.touch(op.Key)
		return []byte("OK")
	default:
		return []byte("ERR")
	}
}

// ApplyBatch executes every request in the batch in order and folds the
// batch digest into the state digest. It returns per-request results.
func (s *Store) ApplyBatch(b *types.Batch) []types.Result {
	results := make([]types.Result, len(b.Requests))
	for i, r := range b.Requests {
		results[i] = types.Result{Client: r.Client, ReqNo: r.ReqNo, Value: s.Apply(r.Op)}
	}
	s.stateDigest = crypto.HistoryDigest(s.stateDigest, b.Digest)
	return results
}

// StateDigest returns the current history digest.
func (s *Store) StateDigest() types.Digest { return s.stateDigest }

// Snapshot captures the store's written state for state-transfer and
// rollback in speculative protocols.
type Snapshot struct {
	recordCount uint64
	records     map[uint64][]byte
	stateDigest types.Digest
	applied     uint64
	intents     map[uint64]intent
	txnKeys     map[uint64][]uint64
	txnDecided  map[uint64]bool
	txnStable   uint64
	outbound    map[uint64]HashRange
	inbound     map[uint64]*rangeStage
	released    []HashRange
	leaseEpoch  uint64
	leaseActive bool
}

// Snapshot copies the current state, transactional intent and range-handoff
// tables included — a speculative rollback that forgot an installed intent,
// a decision, or a frozen/released range would let replicas diverge on a
// later Prepare or handoff retry.
func (s *Store) Snapshot() *Snapshot {
	cp := make(map[uint64][]byte, len(s.records))
	for k, v := range s.records {
		cp[k] = v // values are copy-on-write (Apply always allocates anew)
	}
	ins := make(map[uint64]intent, len(s.intents))
	for k, in := range s.intents {
		ins[k] = in // intent values are immutable once installed
	}
	tk := make(map[uint64][]uint64, len(s.txnKeys))
	for id, keys := range s.txnKeys {
		tk[id] = append([]uint64(nil), keys...)
	}
	td := make(map[uint64]bool, len(s.txnDecided))
	for id, d := range s.txnDecided {
		td[id] = d
	}
	ob := make(map[uint64]HashRange, len(s.outbound))
	for id, r := range s.outbound {
		ob[id] = r
	}
	ib := make(map[uint64]*rangeStage, len(s.inbound))
	for id, st := range s.inbound {
		ib[id] = st.clone()
	}
	return &Snapshot{recordCount: s.recordCount, records: cp, stateDigest: s.stateDigest,
		applied: s.applied, intents: ins, txnKeys: tk, txnDecided: td, txnStable: s.txnStable,
		outbound: ob, inbound: ib, released: append([]HashRange(nil), s.released...),
		leaseEpoch: s.leaseEpoch, leaseActive: s.leaseActive}
}

// clone deep-copies a stage (staged values are copy-on-write once installed,
// chunk/record indexes are not).
func (st *rangeStage) clone() *rangeStage {
	cp := &rangeStage{r: st.r, chunks: make(map[uint32]bool, len(st.chunks)),
		recs: make(map[uint64][]byte, len(st.recs))}
	for c := range st.chunks {
		cp.chunks[c] = true
	}
	for k, v := range st.recs {
		cp.recs[k] = v
	}
	return cp
}

// Restore rewinds the store to a snapshot (speculative execution rollback
// after a view change drops an uncommitted suffix).
func (s *Store) Restore(snap *Snapshot) {
	s.recordCount = snap.recordCount
	s.records = make(map[uint64][]byte, len(snap.records))
	for k, v := range snap.records {
		s.records[k] = v
	}
	s.stateDigest = snap.stateDigest
	s.applied = snap.applied
	s.intents = make(map[uint64]intent, len(snap.intents))
	for k, in := range snap.intents {
		s.intents[k] = in
	}
	s.txnKeys = make(map[uint64][]uint64, len(snap.txnKeys))
	for id, keys := range snap.txnKeys {
		s.txnKeys[id] = append([]uint64(nil), keys...)
	}
	s.txnDecided = make(map[uint64]bool, len(snap.txnDecided))
	for id, d := range snap.txnDecided {
		s.txnDecided[id] = d
	}
	s.txnStable = snap.txnStable
	s.outbound = make(map[uint64]HashRange, len(snap.outbound))
	for id, r := range snap.outbound {
		s.outbound[id] = r
	}
	s.inbound = make(map[uint64]*rangeStage, len(snap.inbound))
	for id, st := range snap.inbound {
		s.inbound[id] = st.clone()
	}
	s.released = append([]HashRange(nil), snap.released...)
	s.leaseEpoch = snap.leaseEpoch
	s.leaseActive = snap.leaseActive
	// The read-view mirror may now be ahead of the store: rebuild it
	// wholesale on the next sync.
	s.viewFull = true
}

// touch records a written-key mutation for incremental read-view sync. A nil
// map means no view is attached and tracking costs nothing.
func (s *Store) touch(key uint64) {
	if s.viewTouched != nil {
		s.viewTouched[key] = struct{}{}
	}
}

// LeaseEpoch returns the last granted lease epoch and whether it is active.
func (s *Store) LeaseEpoch() (epoch uint64, active bool) { return s.leaseEpoch, s.leaseActive }
