package kvstore

import (
	"encoding/binary"
	"fmt"
)

// Cross-shard transaction support: the store-level half of two-phase commit.
//
// A transaction's writes reach a shard as one OpTxnPrepare operation that
// installs a per-key *intent* (the classic write lock with a payload): the
// committed value stays readable, but the key is claimed by the transaction
// until the coordinator's decision arrives as OpTxnCommit (apply every
// intent) or OpTxnAbort (drop them). All four operations execute through
// consensus like any other, so every replica of the shard holds the same
// intent table and the same decision history — prepare state survives f
// replica failures without any extra machinery.
//
// Determinism rules the design: conflicting prepares, writes blocked by a
// foreign intent, and retried decisions must all produce the same result
// bytes on every replica, so outcomes are encoded as fixed status strings
// (TxnPrepared, TxnConflict, ...) and decided transaction ids are remembered
// so a re-delivered Prepare or Commit answers with the original decision
// instead of acting twice.

// Txn operation status results (the deterministic result bytes every replica
// returns).
const (
	// TxnPrepared: every intent of the shard-prepare installed.
	TxnPrepared = "PREPARED"
	// TxnConflict: another transaction holds an intent on one of the keys
	// (or a non-transactional write hit a key under intent).
	TxnConflict = "CONFLICT"
	// TxnCommitted: the transaction's intents were applied (or already had
	// been — decisions are idempotent).
	TxnCommitted = "COMMITTED"
	// TxnAborted: the transaction's intents were dropped, and the id is
	// poisoned: a Prepare arriving after the abort is refused.
	TxnAborted = "ABORTED"
	// TxnNotFound: an update-mode write targets a key that does not exist.
	TxnNotFound = "NOTFOUND"
)

// TxnRead result framing (first byte of an OpTxnRead result).
const (
	// txnReadValue precedes a committed value.
	txnReadValue = 'V'
	// txnReadMissing marks a key with no committed value.
	txnReadMissing = 'N'
	// txnReadIntent marks a key under a pending intent: the blocking txid
	// (8 bytes) follows, then the committed fallback framed as above.
	txnReadIntent = 'I'
)

// TxnWrite is one write of a transaction.
type TxnWrite struct {
	Key uint64
	// Code is the write mode: OpUpdate (the key must exist) or OpInsert
	// (blind upsert).
	Code  OpCode
	Value []byte
}

// intent is a pending transactional write on one key.
type intent struct {
	txid  uint64
	code  OpCode
	value []byte
}

// maxTxnPayload bounds one shard-prepare's encoded payload: the Op wire
// form carries the value length as uint16, so everything after the opcode
// header must fit 64KiB. Oversized transactions fail loudly at encode time
// instead of aborting with an opaque replica-side ERR.
const maxTxnPayload = 1<<16 - 1

// EncodeTxnPrepare builds the OpTxnPrepare operation carrying one shard's
// slice of a transaction's writes. Op.Key is the first write's key and is
// used only for shard routing; the payload is authoritative. The encoded
// payload must fit the Op wire form's 64KiB value bound.
func EncodeTxnPrepare(txid uint64, writes []TxnWrite) (*Op, error) {
	if len(writes) == 0 || len(writes) > maxTxnPayload {
		return nil, fmt.Errorf("kvstore: txn %d: %d writes on one shard (want 1..%d)", txid, len(writes), maxTxnPayload)
	}
	size := 10
	for _, w := range writes {
		if len(w.Value) > maxTxnPayload {
			return nil, fmt.Errorf("kvstore: txn %d: value for key %d is %d bytes (max %d)", txid, w.Key, len(w.Value), maxTxnPayload)
		}
		size += 11 + len(w.Value)
	}
	if size > maxTxnPayload {
		return nil, fmt.Errorf("kvstore: txn %d: shard-prepare payload %d bytes exceeds %d", txid, size, maxTxnPayload)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint64(buf, txid)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(writes)))
	for _, w := range writes {
		buf = binary.BigEndian.AppendUint64(buf, w.Key)
		buf = append(buf, byte(w.Code))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(w.Value)))
		buf = append(buf, w.Value...)
	}
	return &Op{Code: OpTxnPrepare, Key: writes[0].Key, Value: buf}, nil
}

// decodeTxnPrepare parses an OpTxnPrepare payload.
func decodeTxnPrepare(b []byte) (uint64, []TxnWrite, error) {
	if len(b) < 10 {
		return 0, nil, fmt.Errorf("kvstore: txn prepare too short (%d bytes)", len(b))
	}
	txid := binary.BigEndian.Uint64(b[0:8])
	n := int(binary.BigEndian.Uint16(b[8:10]))
	writes := make([]TxnWrite, 0, n)
	rest := b[10:]
	for i := 0; i < n; i++ {
		if len(rest) < 11 {
			return 0, nil, fmt.Errorf("kvstore: txn prepare truncated at write %d", i)
		}
		w := TxnWrite{
			Key:  binary.BigEndian.Uint64(rest[0:8]),
			Code: OpCode(rest[8]),
		}
		vlen := int(binary.BigEndian.Uint16(rest[9:11]))
		if len(rest) < 11+vlen {
			return 0, nil, fmt.Errorf("kvstore: txn prepare value truncated at write %d", i)
		}
		w.Value = rest[11 : 11+vlen]
		rest = rest[11+vlen:]
		writes = append(writes, w)
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("kvstore: txn prepare has %d trailing bytes", len(rest))
	}
	return txid, writes, nil
}

// EncodeTxnDecision builds the OpTxnCommit/OpTxnAbort operation for txid.
// routingKey only steers the op to a shard; decisions are idempotent, so
// any key owned by the target shard works.
func EncodeTxnDecision(commit bool, txid uint64, routingKey uint64) *Op {
	code := OpTxnAbort
	if commit {
		code = OpTxnCommit
	}
	return &Op{Code: code, Key: routingKey,
		Value: binary.BigEndian.AppendUint64(nil, txid)}
}

// EncodeTxnRead builds the intent-aware read of key (see ReadResult).
func EncodeTxnRead(key uint64) *Op { return &Op{Code: OpTxnRead, Key: key} }

// ReadResult is a decoded OpTxnRead outcome: the committed (read-committed)
// view of the key plus an explicit pending-intent signal.
type ReadResult struct {
	// Value is the committed value (nil when !Found). When BlockedBy is
	// non-zero this is the read-committed fallback: the value from before
	// the pending transaction.
	Value []byte
	// Found reports whether the key has a committed value.
	Found bool
	// BlockedBy is the id of the transaction holding an intent on the key
	// (0 when none is pending).
	BlockedBy uint64
	// Unavailable marks a key that was NOT read because its owning shard is
	// degraded (stalled consensus). It is set by the routing layer, never by
	// the store: a cross-shard read reports the shards it could not reach
	// explicitly instead of blocking on them. Value/Found/BlockedBy are
	// meaningless when set.
	Unavailable bool
}

// DecodeTxnRead parses an OpTxnRead result.
func DecodeTxnRead(res []byte) (ReadResult, error) {
	if len(res) == 0 {
		return ReadResult{}, fmt.Errorf("kvstore: empty txn read result")
	}
	var out ReadResult
	b := res
	if b[0] == txnReadIntent {
		if len(b) < 10 {
			return ReadResult{}, fmt.Errorf("kvstore: txn read intent frame too short")
		}
		out.BlockedBy = binary.BigEndian.Uint64(b[1:9])
		b = b[9:]
	}
	switch b[0] {
	case txnReadValue:
		out.Found = true
		out.Value = b[1:]
	case txnReadMissing:
	default:
		return ReadResult{}, fmt.Errorf("kvstore: bad txn read frame byte %q", b[0])
	}
	return out, nil
}

// applyTxnOp executes one transactional operation; called from Apply with a
// decoded op.
func (s *Store) applyTxnOp(op *Op) []byte {
	switch op.Code {
	case OpTxnPrepare:
		return s.applyPrepare(op.Value)
	case OpTxnCommit, OpTxnAbort:
		if len(op.Value) != 8 {
			return []byte("ERR")
		}
		return s.applyDecision(binary.BigEndian.Uint64(op.Value), op.Code == OpTxnCommit)
	case OpTxnRead:
		return s.applyTxnRead(op.Key)
	default:
		return []byte("ERR")
	}
}

// applyPrepare validates a shard-prepare and installs its intents
// atomically: either every write is claimable and all intents install, or
// nothing changes and the vote is negative.
func (s *Store) applyPrepare(payload []byte) []byte {
	txid, writes, err := decodeTxnPrepare(payload)
	if err != nil || txid == 0 || len(writes) == 0 {
		return []byte("ERR")
	}
	// A retried prepare below the stability watermark is refused safely:
	// its decision history is compacted, so it must not be re-acted.
	if txid <= s.txnStable {
		return []byte(TxnStale)
	}
	// A decided transaction answers with its decision: a retried Prepare
	// after commit must not reinstall intents, and a Prepare arriving after
	// a recovery abort must be refused (the abort poisoned the id).
	if d, ok := s.txnDecided[txid]; ok {
		if d {
			return []byte(TxnCommitted)
		}
		return []byte(TxnAborted)
	}
	// Validate every write first.
	for _, w := range writes {
		if s.releasedKey(w.Key) {
			return []byte(WrongShard)
		}
		if s.frozenOut(w.Key) || s.stagedIn(w.Key) {
			return []byte(RangeMigrating)
		}
		if in, ok := s.intents[w.Key]; ok && in.txid != txid {
			return []byte(TxnConflict)
		}
		if w.Code == OpUpdate && !s.exists(w.Key) {
			return []byte(TxnNotFound)
		}
		if w.Code != OpUpdate && w.Code != OpInsert {
			return []byte("ERR")
		}
	}
	// Install. A key written twice in one transaction keeps the last write.
	for _, w := range writes {
		if _, dup := s.intents[w.Key]; !dup {
			s.txnKeys[txid] = append(s.txnKeys[txid], w.Key)
		}
		s.intents[w.Key] = intent{txid: txid, code: w.Code, value: append([]byte(nil), w.Value...)}
	}
	return []byte(TxnPrepared)
}

// applyDecision commits or aborts txid on this shard. Decisions are
// idempotent, and deciding an unprepared transaction is meaningful: it
// records the decision so a later Prepare is answered with it (the recovery
// path aborts transactions whose Prepare never arrived).
func (s *Store) applyDecision(txid uint64, commit bool) []byte {
	if txid == 0 {
		return []byte("ERR")
	}
	// A decision at or below the stability watermark was applied and pruned
	// already (the watermark only advances past fully driven ids); answer
	// the retry without acting.
	if txid <= s.txnStable {
		return []byte(TxnStale)
	}
	if d, ok := s.txnDecided[txid]; ok {
		if d != commit {
			// The attested commit point makes this unreachable for correct
			// coordinators; answer with the recorded decision.
			if d {
				return []byte(TxnCommitted)
			}
			return []byte(TxnAborted)
		}
	}
	for _, k := range s.txnKeys[txid] {
		in, ok := s.intents[k]
		if !ok || in.txid != txid {
			continue
		}
		if commit {
			s.records[k] = in.value
			s.touch(k)
		}
		delete(s.intents, k)
	}
	delete(s.txnKeys, txid)
	s.settleRanges(txid, commit)
	s.txnDecided[txid] = commit
	if commit {
		return []byte(TxnCommitted)
	}
	return []byte(TxnAborted)
}

// applyTxnRead serves the intent-aware read: the committed value, prefixed
// with the blocking transaction id when an intent is pending. A released
// key answers WrongShard (re-route through a newer placement epoch); a key
// merely frozen for an outbound handoff still reads — the source owns the
// data until the flip decision lands.
func (s *Store) applyTxnRead(key uint64) []byte {
	if s.releasedKey(key) {
		return []byte(WrongShard)
	}
	if s.stagedIn(key) {
		return []byte(RangeMigrating)
	}
	var out []byte
	if in, ok := s.intents[key]; ok {
		out = append(out, txnReadIntent)
		out = binary.BigEndian.AppendUint64(out, in.txid)
	}
	if v, ok := s.get(key); ok {
		out = append(out, txnReadValue)
		return append(out, v...)
	}
	return append(out, txnReadMissing)
}

// PendingIntents returns the number of keys currently under a transactional
// intent (tests and the atomicity checks).
func (s *Store) PendingIntents() int { return len(s.intents) }

// TxnDecision reports whether txid has been decided on this shard and, if
// so, which way.
func (s *Store) TxnDecision(txid uint64) (commit, decided bool) {
	d, ok := s.txnDecided[txid]
	return d, ok
}
