package kvstore

import (
	"bytes"
	"testing"
)

// apply runs op on s and returns the result string.
func apply(s *Store, op *Op) string { return string(s.Apply(op.Encode())) }

// prep is EncodeTxnPrepare for known-good test inputs.
func prep(txid uint64, writes []TxnWrite) *Op {
	op, err := EncodeTxnPrepare(txid, writes)
	if err != nil {
		panic(err)
	}
	return op
}

// TestTxnPrepareCommit walks the happy path: prepare installs intents (reads
// stay read-committed), commit applies them and clears the intent table.
func TestTxnPrepareCommit(t *testing.T) {
	s := New(100)
	if got := apply(s, prep(7, []TxnWrite{
		{Key: 1, Code: OpUpdate, Value: []byte("new1")},
		{Key: 2, Code: OpInsert, Value: []byte("new2")},
	})); got != TxnPrepared {
		t.Fatalf("prepare = %q", got)
	}
	if s.PendingIntents() != 2 {
		t.Fatalf("intents = %d, want 2", s.PendingIntents())
	}
	// Plain read still serves the committed value.
	before, _ := s.get(1)
	if got := s.Apply((&Op{Code: OpRead, Key: 1}).Encode()); !bytes.Equal(got, before) {
		t.Fatalf("read under intent = %q, want committed %q", got, before)
	}
	// The intent-aware read reports the blocker and the fallback.
	rr, err := DecodeTxnRead(s.Apply(EncodeTxnRead(1).Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if rr.BlockedBy != 7 || !rr.Found || !bytes.Equal(rr.Value, before) {
		t.Fatalf("txn read = %+v", rr)
	}
	if got := apply(s, EncodeTxnDecision(true, 7, 1)); got != TxnCommitted {
		t.Fatalf("commit = %q", got)
	}
	if s.PendingIntents() != 0 {
		t.Fatalf("intents linger after commit")
	}
	if v, _ := s.get(1); !bytes.Equal(v, []byte("new1")) {
		t.Fatalf("key 1 = %q after commit", v)
	}
	if v, _ := s.get(2); !bytes.Equal(v, []byte("new2")) {
		t.Fatalf("key 2 = %q after commit", v)
	}
	// Decisions are idempotent; a retried prepare answers the decision.
	if got := apply(s, EncodeTxnDecision(true, 7, 1)); got != TxnCommitted {
		t.Fatalf("re-commit = %q", got)
	}
	if got := apply(s, prep(7, []TxnWrite{{Key: 1, Code: OpInsert}})); got != TxnCommitted {
		t.Fatalf("late prepare after commit = %q", got)
	}
}

// TestTxnAbortAndPoison aborts a prepared transaction and checks the id is
// poisoned: intents drop, values stay, and a later Prepare is refused.
func TestTxnAbortAndPoison(t *testing.T) {
	s := New(100)
	before, _ := s.get(3)
	apply(s, prep(9, []TxnWrite{{Key: 3, Code: OpUpdate, Value: []byte("x")}}))
	if got := apply(s, EncodeTxnDecision(false, 9, 3)); got != TxnAborted {
		t.Fatalf("abort = %q", got)
	}
	if v, _ := s.get(3); !bytes.Equal(v, before) {
		t.Fatalf("abort changed value: %q", v)
	}
	if s.PendingIntents() != 0 {
		t.Fatal("intents linger after abort")
	}
	if got := apply(s, prep(9, []TxnWrite{{Key: 3, Code: OpInsert}})); got != TxnAborted {
		t.Fatalf("prepare after abort = %q (id must be poisoned)", got)
	}
	// Aborting a transaction never seen records the decision — the recovery
	// path for a Prepare that never arrived.
	if got := apply(s, EncodeTxnDecision(false, 11, 0)); got != TxnAborted {
		t.Fatalf("abort of unseen txn = %q", got)
	}
	if got := apply(s, prep(11, []TxnWrite{{Key: 5, Code: OpInsert}})); got != TxnAborted {
		t.Fatalf("prepare after recovery abort = %q", got)
	}
}

// TestTxnConflicts covers the vote-no paths: foreign intents, update of a
// missing key, and plain writes blocked by an intent — all atomic (a failed
// prepare installs nothing).
func TestTxnConflicts(t *testing.T) {
	s := New(100)
	apply(s, prep(1, []TxnWrite{{Key: 10, Code: OpUpdate, Value: []byte("a")}}))
	if got := apply(s, prep(2, []TxnWrite{
		{Key: 11, Code: OpUpdate, Value: []byte("b")},
		{Key: 10, Code: OpUpdate, Value: []byte("b")},
	})); got != TxnConflict {
		t.Fatalf("conflicting prepare = %q", got)
	}
	if s.PendingIntents() != 1 {
		t.Fatalf("failed prepare leaked intents: %d", s.PendingIntents())
	}
	if got := apply(s, prep(3, []TxnWrite{{Key: 500, Code: OpUpdate, Value: []byte("c")}})); got != TxnNotFound {
		t.Fatalf("update-missing prepare = %q", got)
	}
	for _, op := range []*Op{
		{Code: OpUpdate, Key: 10, Value: []byte("w")},
		{Code: OpInsert, Key: 10, Value: []byte("w")},
		{Code: OpRMW, Key: 10, Value: []byte("w")},
	} {
		if got := apply(s, op); got != TxnConflict {
			t.Fatalf("plain %v under intent = %q, want conflict", op.Code, got)
		}
	}
}

// TestTxnSnapshotRestore checks speculative rollback round-trips the
// transactional state: intents and decisions reappear exactly.
func TestTxnSnapshotRestore(t *testing.T) {
	s := New(100)
	apply(s, prep(5, []TxnWrite{{Key: 1, Code: OpUpdate, Value: []byte("v")}}))
	apply(s, EncodeTxnDecision(false, 6, 0))
	snap := s.Snapshot()
	apply(s, EncodeTxnDecision(true, 5, 1))
	if s.PendingIntents() != 0 {
		t.Fatal("commit should clear intents")
	}
	s.Restore(snap)
	if s.PendingIntents() != 1 {
		t.Fatalf("restore lost the intent: %d", s.PendingIntents())
	}
	if _, decided := s.TxnDecision(5); decided {
		t.Fatal("restore resurrected a post-snapshot decision")
	}
	if d, ok := s.TxnDecision(6); !ok || d {
		t.Fatal("restore lost the abort decision")
	}
	// The restored intent still commits cleanly.
	if got := apply(s, EncodeTxnDecision(true, 5, 1)); got != TxnCommitted {
		t.Fatalf("commit after restore = %q", got)
	}
	if v, _ := s.get(1); !bytes.Equal(v, []byte("v")) {
		t.Fatalf("value after restored commit = %q", v)
	}
}

// TestTxnEncodingRoundTrips fuzzes the wire forms lightly: prepare and read
// results survive encode/decode, and malformed payloads answer ERR rather
// than panicking.
func TestTxnEncodingRoundTrips(t *testing.T) {
	writes := []TxnWrite{
		{Key: 42, Code: OpUpdate, Value: []byte("hello")},
		{Key: 7, Code: OpInsert, Value: nil},
	}
	op := prep(99, writes)
	txid, got, err := decodeTxnPrepare(op.Value)
	if err != nil || txid != 99 || len(got) != 2 {
		t.Fatalf("round trip: txid=%d writes=%v err=%v", txid, got, err)
	}
	if got[0].Key != 42 || got[0].Code != OpUpdate || !bytes.Equal(got[0].Value, []byte("hello")) {
		t.Fatalf("write 0 = %+v", got[0])
	}
	s := New(10)
	for _, bad := range [][]byte{
		(&Op{Code: OpTxnPrepare, Value: []byte{1, 2}}).Encode(),
		(&Op{Code: OpTxnCommit, Value: []byte{1, 2, 3}}).Encode(),
		(&Op{Code: OpTxnPrepare}).Encode(),
	} {
		if got := string(s.Apply(bad)); got != "ERR" {
			t.Fatalf("malformed txn op = %q, want ERR", got)
		}
	}
	if _, err := DecodeTxnRead(nil); err == nil {
		t.Fatal("empty txn read result must error")
	}
	if _, err := DecodeTxnRead([]byte{'Z'}); err == nil {
		t.Fatal("bad frame byte must error")
	}
	rr, err := DecodeTxnRead(s.Apply(EncodeTxnRead(1).Encode()))
	if err != nil || !rr.Found || rr.BlockedBy != 0 {
		t.Fatalf("plain txn read = %+v, %v", rr, err)
	}
	rr, err = DecodeTxnRead(s.Apply(EncodeTxnRead(9999).Encode()))
	if err != nil || rr.Found {
		t.Fatalf("missing-key txn read = %+v, %v", rr, err)
	}
}

// TestTxnPrepareSizeBounds: oversized write sets fail at encode time with a
// descriptive error instead of aborting replica-side as opaque ERR.
func TestTxnPrepareSizeBounds(t *testing.T) {
	if _, err := EncodeTxnPrepare(1, nil); err == nil {
		t.Fatal("empty write set must not encode")
	}
	big := make([]byte, maxTxnPayload+1)
	if _, err := EncodeTxnPrepare(1, []TxnWrite{{Key: 1, Code: OpInsert, Value: big}}); err == nil {
		t.Fatal("oversized value must not encode")
	}
	// Many small writes whose total payload exceeds the op value bound.
	many := make([]TxnWrite, 6000)
	for i := range many {
		many[i] = TxnWrite{Key: uint64(i), Code: OpInsert, Value: []byte("0123456789")}
	}
	if _, err := EncodeTxnPrepare(1, many); err == nil {
		t.Fatal("oversized payload must not encode")
	}
	// A comfortably-sized set still round-trips.
	ok := make([]TxnWrite, 100)
	for i := range ok {
		ok[i] = TxnWrite{Key: uint64(i), Code: OpInsert, Value: []byte("v")}
	}
	op, err := EncodeTxnPrepare(1, ok)
	if err != nil {
		t.Fatal(err)
	}
	if _, ws, err := decodeTxnPrepare(op.Value); err != nil || len(ws) != 100 {
		t.Fatalf("round trip: %d writes, %v", len(ws), err)
	}
}
