package kvstore

import (
	"encoding/binary"
	"sync"
	"time"

	"flexitrust/internal/types"
)

// ReadView is a concurrency-safe, watermark-consistent mirror of the store's
// read-relevant state: the written records, the keys under transactional
// intents, and the hash ranges this store does not own. The hosting
// substrate publishes into it with Store.SyncView on the execution
// goroutine after every committed batch; the lease-read fast path consults
// it from OTHER goroutines (a transport delivery thread in the runtime),
// which is exactly why the store itself — deliberately single-threaded —
// cannot be read directly.
//
// A view at sequence S answers exactly what OpTxnRead would have answered
// had it committed at slot S: same values, same refusals. Lookup refuses
// (sending the reader down the consensus fallback) rather than guessing
// whenever the committed answer at S is not the full story — key under
// intent, range released or mid-migration, or the view still behind the
// reader's fence.
type ReadView struct {
	mu          sync.RWMutex
	seq         types.SeqNum
	recordCount uint64
	records     map[uint64][]byte
	intents     map[uint64]struct{}
	unowned     []HashRange // released ∪ inbound-staged: reads refuse here
}

// NewReadView returns an empty view (sequence 0 — nothing is servable until
// the first SyncView).
func NewReadView() *ReadView {
	return &ReadView{records: make(map[uint64][]byte), intents: make(map[uint64]struct{})}
}

// ReadStatus is the outcome of a ReadView lookup.
type ReadStatus uint8

// Lookup outcomes.
const (
	ReadOK ReadStatus = iota
	ReadNotFound
	// ReadRefused: the view cannot answer this read safely — it is behind
	// the fence, the key's range is unowned or migrating, or the key is
	// under a transactional intent. The caller falls back to consensus.
	ReadRefused
)

// Lookup answers a single-key read at-or-above fence. seq is the view's
// committed sequence at answer time (the reply watermark).
func (v *ReadView) Lookup(key uint64, fence types.SeqNum) (val []byte, seq types.SeqNum, st ReadStatus) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.seq < fence {
		return nil, v.seq, ReadRefused
	}
	if rangesContain(v.unowned, KeyHash(key)) {
		return nil, v.seq, ReadRefused
	}
	if _, held := v.intents[key]; held {
		return nil, v.seq, ReadRefused
	}
	if val, ok := v.records[key]; ok {
		return val, v.seq, ReadOK
	}
	if key < v.recordCount {
		return defaultValue(key), v.seq, ReadOK
	}
	return nil, v.seq, ReadNotFound
}

// Seq returns the view's committed sequence.
func (v *ReadView) Seq() types.SeqNum {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.seq
}

// SyncView publishes the store's post-batch state into v at committed
// sequence seq. It must be called on the execution goroutine, after the
// batch at seq has applied. The first call switches the store into
// touched-key tracking and rebuilds the mirror wholesale; later calls copy
// only the keys the intervening batches wrote. Values are shared by
// reference — Apply never mutates a stored value in place, so a published
// slice is immutable.
func (s *Store) SyncView(v *ReadView, seq types.SeqNum) {
	if v == nil {
		return
	}
	full := s.viewFull || s.viewTouched == nil
	if s.viewTouched == nil {
		s.viewTouched = make(map[uint64]struct{})
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq = seq
	v.recordCount = s.recordCount
	if full {
		v.records = make(map[uint64][]byte, len(s.records))
		for k, val := range s.records {
			v.records[k] = val
		}
		s.viewFull = false
	} else {
		for k := range s.viewTouched {
			if val, ok := s.records[k]; ok {
				v.records[k] = val
			} else {
				delete(v.records, k)
			}
		}
	}
	clear(s.viewTouched)
	// The refusal state (intent keys, unowned ranges) is small at any
	// instant; mirror it wholesale every sync rather than tracking deltas.
	v.intents = make(map[uint64]struct{}, len(s.intents))
	for k := range s.intents {
		v.intents[k] = struct{}{}
	}
	unowned := append([]HashRange(nil), s.released...)
	for _, st := range s.inbound {
		unowned = addRange(unowned, st.r)
	}
	v.unowned = unowned
}

// --- lease grant/revoke op encoding ---

// EncodeLeaseGrant builds the consensus op granting a dur-long read lease.
// Committing it allocates the next lease epoch; the result carries the
// epoch back to the submitter (see DecodeLeaseGrant).
func EncodeLeaseGrant(dur time.Duration) *Op {
	return &Op{Code: OpLeaseGrant, Value: binary.BigEndian.AppendUint64(nil, uint64(dur))}
}

// EncodeLeaseRevoke builds the consensus op deactivating the current lease
// epoch (placement changes submit it ahead of mutating ownership).
func EncodeLeaseRevoke() *Op { return &Op{Code: OpLeaseRevoke} }

// DecodeLeaseGrant parses an OpLeaseGrant result into the allocated epoch.
// ok is false for refusal/error results.
func DecodeLeaseGrant(res []byte) (epoch uint64, ok bool) {
	if len(res) != 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(res), true
}

// LeaseGrantDuration parses the duration payload of a decoded OpLeaseGrant.
func LeaseGrantDuration(op *Op) (time.Duration, bool) {
	if op.Code != OpLeaseGrant || len(op.Value) != 8 {
		return 0, false
	}
	return time.Duration(binary.BigEndian.Uint64(op.Value)), true
}
