package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Range-scoped state handoff: the store-level half of live shard
// rebalancing.
//
// A placement change moves one contiguous interval of the key-HASH space
// (every layer that partitions keys agrees on KeyHash) from a source group
// to a destination group. The handoff mirrors the two-phase transaction
// machinery and shares its decision plumbing:
//
//   - OpRangeFreeze is the source-side prepare: it claims the range under a
//     handoff id (writes to the range are refused with RangeMigrating until
//     the decision lands — reads keep being served, the source still owns
//     the data), and its deterministic result is the range EXPORT: every
//     explicitly written record whose key hash falls in the range, sorted
//     by key. Records the initial database materializes lazily need no
//     copying — both stores derive identical defaults from the key.
//
//   - OpRangeInstall is the destination-side prepare: it stages one chunk
//     of the export under the handoff id. Staged records are invisible
//     until the commit decision applies them (and are dropped whole on
//     abort), so a crashed handoff never leaks half a range.
//
//   - The decision arrives as the ordinary OpTxnCommit/OpTxnAbort carrying
//     the handoff id: commit makes the source delete the range's records
//     and mark the interval RELEASED (operations on released keys answer
//     WrongShard deterministically — the stale-epoch signal routing layers
//     retry on), while the destination applies its staged records and
//     un-releases the interval if it had given it away before. Handoff ids
//     share the transaction decision table, so retries are idempotent and
//     an abort poisons the id exactly like a transactional prepare.
//
// Everything executes through consensus, so every replica of each group
// holds the same frozen/staged/released state and the export is computed
// identically on every replica (the client's reply quorum cross-checks it).

// HashRange is a contiguous interval of the 64-bit key-hash space,
// inclusive on both ends (End = ^uint64(0) reaches the top of the space).
type HashRange struct {
	Start, End uint64
}

// Contains reports whether hash h falls inside the range.
func (r HashRange) Contains(h uint64) bool { return h >= r.Start && h <= r.End }

// Overlaps reports whether two ranges share any hash.
func (r HashRange) Overlaps(o HashRange) bool { return r.Start <= o.End && o.Start <= r.End }

// valid reports whether the range is well-formed (non-inverted; a
// single-point range Start==End is legal).
func (r HashRange) valid() bool { return r.Start <= r.End }

// Additional deterministic status results of the range-handoff and
// compaction operations.
const (
	// RangeStaged: the install chunk is staged (or already was — installs
	// are idempotent per chunk).
	RangeStaged = "STAGED"
	// RangeMigrating: the key belongs to a range frozen by an in-flight
	// handoff; writes are refused until the handoff decides.
	RangeMigrating = "MIGRATING"
	// WrongShard: the key's range was released to another group — the
	// caller's placement map is stale and it must re-route through a newer
	// epoch.
	WrongShard = "WRONGSHARD"
	// TxnStale: the operation names a transaction/handoff id at or below
	// the stability watermark; its decision history has been compacted away
	// and the retry is refused without acting.
	TxnStale = "STALE"
)

// RangeRecord is one explicitly written record of a range export.
type RangeRecord struct {
	Key   uint64
	Value []byte
}

// rangeStage is one in-flight inbound handoff's staged state.
type rangeStage struct {
	r      HashRange
	chunks map[uint32]bool
	recs   map[uint64][]byte
}

// rangeExportTag frames a successful OpRangeFreeze result ('S' + count +
// records); any other first byte is a status string.
const rangeExportTag = 'S'

// EncodeRangeFreeze builds the source-side prepare of handoff hid over r.
func EncodeRangeFreeze(hid uint64, r HashRange) *Op {
	buf := make([]byte, 0, 24)
	buf = binary.BigEndian.AppendUint64(buf, hid)
	buf = binary.BigEndian.AppendUint64(buf, r.Start)
	buf = binary.BigEndian.AppendUint64(buf, r.End)
	return &Op{Code: OpRangeFreeze, Value: buf}
}

// maxInstallValue is the largest record value one install chunk can carry:
// the Op payload bound minus the chunk header (32 bytes) and the record
// header (10 bytes). Plain writes accept values up to the raw 64KiB wire
// bound, so a record in the sliver above maxInstallValue cannot be
// exported — rebalancing such a range aborts with an error naming the key.
const maxInstallValue = maxTxnPayload - 42

// EncodeRangeInstall builds one destination-side install chunk of handoff
// hid: chunk index `chunk` carrying recs. The encoded payload must fit the
// Op wire form's 64KiB value bound — split exports with ChunkRangeRecords.
func EncodeRangeInstall(hid uint64, r HashRange, chunk uint32, recs []RangeRecord) (*Op, error) {
	size := 32
	for _, rec := range recs {
		if len(rec.Value) > maxInstallValue {
			return nil, fmt.Errorf("kvstore: handoff %d: value for key %d is %d bytes, exceeding the %d-byte install bound — the range cannot migrate while the key holds it", hid, rec.Key, len(rec.Value), maxInstallValue)
		}
		size += 10 + len(rec.Value)
	}
	if size > maxTxnPayload {
		return nil, fmt.Errorf("kvstore: handoff %d: install chunk %d bytes exceeds %d", hid, size, maxTxnPayload)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint64(buf, hid)
	buf = binary.BigEndian.AppendUint64(buf, r.Start)
	buf = binary.BigEndian.AppendUint64(buf, r.End)
	buf = binary.BigEndian.AppendUint32(buf, chunk)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(recs)))
	for _, rec := range recs {
		buf = binary.BigEndian.AppendUint64(buf, rec.Key)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(rec.Value)))
		buf = append(buf, rec.Value...)
	}
	return &Op{Code: OpRangeInstall, Value: buf}, nil
}

// EncodeTxnCompact builds the decision-history compaction operation: prune
// transaction/handoff decisions at or below the stability watermark wm.
func EncodeTxnCompact(wm uint64) *Op {
	return &Op{Code: OpTxnCompact, Value: binary.BigEndian.AppendUint64(nil, wm)}
}

// ChunkRangeRecords splits an export into install chunks that each fit the
// Op payload bound. An empty export still yields one (empty) chunk — the
// destination must learn the handoff id and range to take part in the
// decision.
func ChunkRangeRecords(recs []RangeRecord) [][]RangeRecord {
	const budget = maxTxnPayload - 64 // header + slack
	chunks := [][]RangeRecord{}
	cur := []RangeRecord{}
	size := 0
	for _, rec := range recs {
		recSize := 10 + len(rec.Value)
		if size+recSize > budget && len(cur) > 0 {
			chunks = append(chunks, cur)
			cur, size = []RangeRecord{}, 0
		}
		cur = append(cur, rec)
		size += recSize
	}
	return append(chunks, cur)
}

// DecodeRangeExport parses an OpRangeFreeze result. ok is false when the
// result is a refusal status (CONFLICT, WRONGSHARD, MIGRATING, STALE,
// COMMITTED, ABORTED, ERR) rather than an export frame.
func DecodeRangeExport(res []byte) (recs []RangeRecord, ok bool) {
	if len(res) < 5 || res[0] != rangeExportTag {
		return nil, false
	}
	n := int(binary.BigEndian.Uint32(res[1:5]))
	rest := res[5:]
	if n > len(rest)/10 {
		return nil, false // count field exceeds what the bytes could hold
	}
	recs = make([]RangeRecord, 0, n)
	for i := 0; i < n; i++ {
		if len(rest) < 10 {
			return nil, false
		}
		rec := RangeRecord{Key: binary.BigEndian.Uint64(rest[0:8])}
		vlen := int(binary.BigEndian.Uint16(rest[8:10]))
		if len(rest) < 10+vlen {
			return nil, false
		}
		rec.Value = rest[10 : 10+vlen]
		rest = rest[10+vlen:]
		recs = append(recs, rec)
	}
	if len(rest) != 0 {
		return nil, false
	}
	return recs, true
}

// --- interval set helpers (released ranges) ---

// rangesContain reports whether h falls in any of the (sorted, disjoint)
// ranges.
func rangesContain(rs []HashRange, h uint64) bool {
	for _, r := range rs {
		if r.Contains(h) {
			return true
		}
	}
	return false
}

// rangesOverlap reports whether r overlaps any of the ranges.
func rangesOverlap(rs []HashRange, r HashRange) bool {
	for _, o := range rs {
		if r.Overlaps(o) {
			return true
		}
	}
	return false
}

// addRange inserts r into the sorted disjoint set, merging overlapping and
// adjacent intervals.
func addRange(rs []HashRange, r HashRange) []HashRange {
	out := make([]HashRange, 0, len(rs)+1)
	for _, o := range rs {
		adjacent := (o.End != ^uint64(0) && o.End+1 == r.Start) || (r.End != ^uint64(0) && r.End+1 == o.Start)
		if o.Overlaps(r) || adjacent {
			if o.Start < r.Start {
				r.Start = o.Start
			}
			if o.End > r.End {
				r.End = o.End
			}
			continue
		}
		out = append(out, o)
	}
	out = append(out, r)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// subtractRange removes the interval r from the set, splitting intervals
// that straddle its ends.
func subtractRange(rs []HashRange, r HashRange) []HashRange {
	out := make([]HashRange, 0, len(rs)+1)
	for _, o := range rs {
		if !o.Overlaps(r) {
			out = append(out, o)
			continue
		}
		if o.Start < r.Start {
			out = append(out, HashRange{Start: o.Start, End: r.Start - 1})
		}
		if o.End > r.End {
			out = append(out, HashRange{Start: r.End + 1, End: o.End})
		}
	}
	return out
}

// --- apply-side handlers (called from Store.Apply with decoded ops) ---

// released reports whether the store has given the key's range away.
func (s *Store) releasedKey(key uint64) bool { return rangesContain(s.released, KeyHash(key)) }

// frozenOut reports whether the key falls in an outbound range frozen by an
// in-flight handoff.
func (s *Store) frozenOut(key uint64) bool {
	h := KeyHash(key)
	for _, r := range s.outbound {
		if r.Contains(h) {
			return true
		}
	}
	return false
}

// stagedIn reports whether the key falls in an inbound range staged by an
// in-flight handoff. The destination does not own such a range yet:
// serving reads would expose pre-handoff state, and accepting writes would
// let the commit's staged records clobber them — both refuse with
// RangeMigrating until the decision lands.
func (s *Store) stagedIn(key uint64) bool {
	h := KeyHash(key)
	for _, st := range s.inbound {
		if st.r.Contains(h) {
			return true
		}
	}
	return false
}

// applyRangeFreeze executes the source-side prepare: claim the range under
// the handoff id and answer with the deterministic export.
func (s *Store) applyRangeFreeze(payload []byte) []byte {
	if len(payload) != 24 {
		return []byte("ERR")
	}
	hid := binary.BigEndian.Uint64(payload[0:8])
	r := HashRange{Start: binary.BigEndian.Uint64(payload[8:16]), End: binary.BigEndian.Uint64(payload[16:24])}
	if hid == 0 || !r.valid() {
		return []byte("ERR")
	}
	if hid <= s.txnStable {
		return []byte(TxnStale)
	}
	if d, ok := s.txnDecided[hid]; ok {
		if d {
			return []byte(TxnCommitted)
		}
		return []byte(TxnAborted)
	}
	if prev, ok := s.outbound[hid]; ok {
		if prev != r {
			return []byte("ERR")
		}
		return s.exportRange(r) // idempotent re-export: the range is frozen, so it is stable
	}
	if rangesOverlap(s.released, r) {
		return []byte(WrongShard)
	}
	for _, o := range s.outbound {
		if o.Overlaps(r) {
			return []byte(TxnConflict)
		}
	}
	// An inbound stage means this store does not own the interval yet: the
	// staged records only become visible when that handoff commits. Freezing
	// over it would export the pre-handoff state (losing the migrated
	// records on the new destination) or, worse, race the commit into
	// doubly-owned keys — refuse until the earlier handoff decides.
	for _, st := range s.inbound {
		if st.r.Overlaps(r) {
			return []byte(RangeMigrating)
		}
	}
	// Keys under a pending transaction intent cannot migrate: the 2PC
	// decision must land on the store that owns them.
	for k := range s.intents {
		if r.Contains(KeyHash(k)) {
			return []byte(TxnConflict)
		}
	}
	s.outbound[hid] = r
	// A frozen range's ownership is in flight: deactivate the read lease so
	// no replica keeps serving local reads over keys it may be giving away.
	s.leaseActive = false
	return s.exportRange(r)
}

// exportRange serializes the written records whose hash falls in r, sorted
// by key (deterministic across replicas).
func (s *Store) exportRange(r HashRange) []byte {
	keys := make([]uint64, 0)
	for k := range s.records {
		if r.Contains(KeyHash(k)) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := []byte{rangeExportTag}
	out = binary.BigEndian.AppendUint32(out, uint32(len(keys)))
	for _, k := range keys {
		out = binary.BigEndian.AppendUint64(out, k)
		out = binary.BigEndian.AppendUint16(out, uint16(len(s.records[k])))
		out = append(out, s.records[k]...)
	}
	return out
}

// applyRangeInstall executes the destination-side prepare: stage one chunk.
func (s *Store) applyRangeInstall(payload []byte) []byte {
	if len(payload) < 32 {
		return []byte("ERR")
	}
	hid := binary.BigEndian.Uint64(payload[0:8])
	r := HashRange{Start: binary.BigEndian.Uint64(payload[8:16]), End: binary.BigEndian.Uint64(payload[16:24])}
	chunk := binary.BigEndian.Uint32(payload[24:28])
	n := int(binary.BigEndian.Uint32(payload[28:32]))
	if hid == 0 || !r.valid() {
		return []byte("ERR")
	}
	if hid <= s.txnStable {
		return []byte(TxnStale)
	}
	if d, ok := s.txnDecided[hid]; ok {
		if d {
			return []byte(TxnCommitted)
		}
		return []byte(TxnAborted)
	}
	// Parse and validate the whole chunk before touching any state: ops are
	// attacker-reachable (they execute for any client), and a stage
	// registered for a malformed chunk would lock the claimed range behind
	// RangeMigrating under a handoff id that may never be decided. The count
	// field is bounded by what the payload could possibly hold before the
	// allocation trusts it.
	rest := payload[32:]
	if n > len(rest)/10 {
		return []byte("ERR")
	}
	recs := make([]RangeRecord, 0, n)
	for i := 0; i < n; i++ {
		if len(rest) < 10 {
			return []byte("ERR")
		}
		rec := RangeRecord{Key: binary.BigEndian.Uint64(rest[0:8])}
		vlen := int(binary.BigEndian.Uint16(rest[8:10]))
		if len(rest) < 10+vlen {
			return []byte("ERR")
		}
		rec.Value = rest[10 : 10+vlen]
		rest = rest[10+vlen:]
		recs = append(recs, rec)
	}
	if len(rest) != 0 {
		return []byte("ERR")
	}
	st := s.inbound[hid]
	if st == nil {
		st = &rangeStage{r: r, chunks: make(map[uint32]bool), recs: make(map[uint64][]byte)}
		s.inbound[hid] = st
	} else if st.r != r {
		return []byte("ERR")
	}
	if st.chunks[chunk] {
		return []byte(RangeStaged) // resent chunk: idempotent
	}
	st.chunks[chunk] = true
	for _, rec := range recs {
		if !r.Contains(KeyHash(rec.Key)) {
			continue // a record outside the claimed range never installs
		}
		st.recs[rec.Key] = append([]byte(nil), rec.Value...)
	}
	return []byte(RangeStaged)
}

// settleRanges applies the handoff side of a decision: the source releases
// (or unfreezes) its outbound range, the destination applies (or drops) its
// staged records. Called from applyDecision under the shared id space.
func (s *Store) settleRanges(txid uint64, commit bool) {
	if r, ok := s.outbound[txid]; ok {
		if commit {
			for k := range s.records {
				if r.Contains(KeyHash(k)) {
					delete(s.records, k)
				}
			}
			s.released = addRange(s.released, r)
			s.viewFull = true // record set changed wholesale
		}
		delete(s.outbound, txid)
	}
	if st, ok := s.inbound[txid]; ok {
		if commit {
			for k, v := range st.recs {
				s.records[k] = v
			}
			s.released = subtractRange(s.released, st.r)
			s.viewFull = true
		}
		delete(s.inbound, txid)
	}
}

// applyTxnCompact prunes decided transaction/handoff ids at or below the
// stability watermark. After compaction any operation naming a pruned id
// answers TxnStale — refused safely rather than re-acted.
func (s *Store) applyTxnCompact(payload []byte) []byte {
	if len(payload) != 8 {
		return []byte("ERR")
	}
	wm := binary.BigEndian.Uint64(payload)
	if wm > s.txnStable {
		s.txnStable = wm
		for id := range s.txnDecided {
			if id <= wm {
				delete(s.txnDecided, id)
			}
		}
	}
	return []byte("OK")
}

// ReleasedRanges returns the store's released intervals (tests).
func (s *Store) ReleasedRanges() []HashRange { return append([]HashRange(nil), s.released...) }

// TxnStableWatermark returns the store's compaction watermark (tests).
func (s *Store) TxnStableWatermark() uint64 { return s.txnStable }
