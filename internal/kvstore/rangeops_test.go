package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

// keyInRange / keyOutsideRange find test keys by hash membership.
func keyInRange(t *testing.T, r HashRange, from uint64) uint64 {
	t.Helper()
	for k := from; k < from+1_000_000; k++ {
		if r.Contains(KeyHash(k)) {
			return k
		}
	}
	t.Fatal("no key found in range")
	return 0
}

func keyOutsideRange(t *testing.T, r HashRange, from uint64) uint64 {
	t.Helper()
	for k := from; k < from+1_000_000; k++ {
		if !r.Contains(KeyHash(k)) {
			return k
		}
	}
	t.Fatal("no key found outside range")
	return 0
}

// lowerHalf is the migrated interval used throughout. The `apply` test
// shorthand lives in txn_test.go.
var lowerHalf = HashRange{Start: 0, End: 1<<63 - 1}

// TestRangeFreezeExportInstallCommit walks the full handoff at the store
// level: freeze exports exactly the in-range written records, writes to the
// frozen range are refused while reads still serve, install stages on the
// destination invisibly, and the commit decision flips ownership — source
// deletes + releases (WrongShard), destination serves the records.
func TestRangeFreezeExportInstallCommit(t *testing.T) {
	src, dst := New(0), New(0)
	in1 := keyInRange(t, lowerHalf, 100)
	in2 := keyInRange(t, lowerHalf, in1+1)
	out := keyOutsideRange(t, lowerHalf, 100)
	for _, k := range []uint64{in1, in2, out} {
		if res := apply(src, &Op{Code: OpInsert, Key: k, Value: []byte(fmt.Sprintf("v%d", k))}); res != "OK" {
			t.Fatalf("insert %d: %s", k, res)
		}
	}

	const hid = 7
	raw := src.Apply(EncodeRangeFreeze(hid, lowerHalf).Encode())
	recs, ok := DecodeRangeExport(raw)
	if !ok {
		t.Fatalf("freeze refused: %s", raw)
	}
	if len(recs) != 2 {
		t.Fatalf("export carries %d records, want 2 (in-range only)", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Key >= recs[i].Key {
			t.Fatalf("export not sorted: %v", recs)
		}
	}
	// Frozen: writes refused, reads still served.
	if res := apply(src, &Op{Code: OpUpdate, Key: in1, Value: []byte("x")}); res != RangeMigrating {
		t.Fatalf("write to frozen range: %s", res)
	}
	if res := apply(src, &Op{Code: OpRead, Key: in1}); res != fmt.Sprintf("v%d", in1) {
		t.Fatalf("read of frozen range: %s", res)
	}
	// Out-of-range keys are untouched.
	if res := apply(src, &Op{Code: OpUpdate, Key: out, Value: []byte("y")}); res != "OK" {
		t.Fatalf("write outside range: %s", res)
	}
	// Idempotent re-freeze re-exports identically (the range is stable).
	if again := src.Apply(EncodeRangeFreeze(hid, lowerHalf).Encode()); !bytes.Equal(again, raw) {
		t.Fatal("re-freeze export differs")
	}

	// Install on the destination, chunked; staged records are invisible.
	for i, chunk := range ChunkRangeRecords(recs) {
		op, err := EncodeRangeInstall(hid, lowerHalf, uint32(i), chunk)
		if err != nil {
			t.Fatal(err)
		}
		if res := apply(dst, op); res != RangeStaged {
			t.Fatalf("install chunk %d: %s", i, res)
		}
		// Chunk resends are idempotent.
		if res := apply(dst, op); res != RangeStaged {
			t.Fatalf("install resend: %s", res)
		}
	}
	// The destination does not own the staged range yet: reads would expose
	// pre-handoff state and writes would be clobbered by the commit's
	// staged records, so both refuse until the decision lands.
	if res := apply(dst, &Op{Code: OpRead, Key: in1}); res != RangeMigrating {
		t.Fatalf("read of staged range before commit: %s", res)
	}
	if res := apply(dst, &Op{Code: OpInsert, Key: in1, Value: []byte("racer")}); res != RangeMigrating {
		t.Fatalf("write into staged range before commit: %s", res)
	}

	// Commit on both sides.
	if res := apply(src, EncodeTxnDecision(true, hid, 0)); res != TxnCommitted {
		t.Fatalf("src commit: %s", res)
	}
	if res := apply(dst, EncodeTxnDecision(true, hid, 0)); res != TxnCommitted {
		t.Fatalf("dst commit: %s", res)
	}
	for _, k := range []uint64{in1, in2} {
		if res := apply(src, &Op{Code: OpRead, Key: k}); res != WrongShard {
			t.Fatalf("src still serves moved key %d: %s", k, res)
		}
		if res := apply(src, &Op{Code: OpInsert, Key: k, Value: []byte("z")}); res != WrongShard {
			t.Fatalf("src accepts write to released key %d: %s", k, res)
		}
		if res := apply(dst, &Op{Code: OpRead, Key: k}); res != fmt.Sprintf("v%d", k) {
			t.Fatalf("dst missing moved key %d: %s", k, res)
		}
	}
	if res := apply(src, &Op{Code: OpRead, Key: out}); res != "y" {
		t.Fatalf("src lost out-of-range key: %s", res)
	}
	if len(src.ReleasedRanges()) != 1 {
		t.Fatalf("released ranges: %v", src.ReleasedRanges())
	}
}

// TestRangeAbortUnfreezes: an aborted handoff drops the freeze and the
// staging whole — source serves and accepts writes again, destination shows
// nothing, and the poisoned id refuses a late freeze.
func TestRangeAbortUnfreezes(t *testing.T) {
	src, dst := New(0), New(0)
	in := keyInRange(t, lowerHalf, 100)
	apply(src, &Op{Code: OpInsert, Key: in, Value: []byte("keep")})

	const hid = 9
	raw := src.Apply(EncodeRangeFreeze(hid, lowerHalf).Encode())
	recs, ok := DecodeRangeExport(raw)
	if !ok {
		t.Fatalf("freeze refused: %s", raw)
	}
	op, err := EncodeRangeInstall(hid, lowerHalf, 0, recs)
	if err != nil {
		t.Fatal(err)
	}
	apply(dst, op)

	if res := apply(src, EncodeTxnDecision(false, hid, 0)); res != TxnAborted {
		t.Fatalf("src abort: %s", res)
	}
	if res := apply(dst, EncodeTxnDecision(false, hid, 0)); res != TxnAborted {
		t.Fatalf("dst abort: %s", res)
	}
	if res := apply(src, &Op{Code: OpUpdate, Key: in, Value: []byte("alive")}); res != "OK" {
		t.Fatalf("src write after abort: %s", res)
	}
	if res := apply(dst, &Op{Code: OpRead, Key: in}); res != "NOTFOUND" {
		t.Fatalf("aborted staging leaked on dst: %s", res)
	}
	// The id is poisoned: a late freeze answers the abort.
	if res := string(src.Apply(EncodeRangeFreeze(hid, lowerHalf).Encode())); res != TxnAborted {
		t.Fatalf("late freeze after abort: %s", res)
	}
}

// TestRangeFreezeRefusals: overlapping freezes conflict, a range already
// given away answers WrongShard, and a range holding a txn intent conflicts.
func TestRangeFreezeRefusals(t *testing.T) {
	s := New(0)
	if raw := s.Apply(EncodeRangeFreeze(1, lowerHalf).Encode()); raw[0] != 'S' {
		t.Fatalf("first freeze: %s", raw)
	}
	overlap := HashRange{Start: lowerHalf.End / 2, End: lowerHalf.End + 10}
	if res := string(s.Apply(EncodeRangeFreeze(2, overlap).Encode())); res != TxnConflict {
		t.Fatalf("overlapping freeze: %s", res)
	}
	apply(s, EncodeTxnDecision(true, 1, 0)) // release lowerHalf
	if res := string(s.Apply(EncodeRangeFreeze(3, lowerHalf).Encode())); res != WrongShard {
		t.Fatalf("freeze of released range: %s", res)
	}
	// Intent in range blocks migration.
	upper := HashRange{Start: lowerHalf.End + 1, End: ^uint64(0)}
	k := keyInRange(t, upper, 100)
	prep, err := EncodeTxnPrepare(50, []TxnWrite{{Key: k, Code: OpInsert, Value: []byte("i")}})
	if err != nil {
		t.Fatal(err)
	}
	if res := apply(s, prep); res != TxnPrepared {
		t.Fatalf("prepare: %s", res)
	}
	if res := string(s.Apply(EncodeRangeFreeze(4, upper).Encode())); res != TxnConflict {
		t.Fatalf("freeze over pending intent: %s", res)
	}
	// And symmetrically: a prepare against a frozen range refuses.
	apply(s, EncodeTxnDecision(false, 50, 0))
	if raw := s.Apply(EncodeRangeFreeze(5, upper).Encode()); raw[0] != 'S' {
		t.Fatalf("refreeze: %s", raw)
	}
	prep2, err := EncodeTxnPrepare(51, []TxnWrite{{Key: k, Code: OpInsert, Value: []byte("j")}})
	if err != nil {
		t.Fatal(err)
	}
	if res := apply(s, prep2); res != RangeMigrating {
		t.Fatalf("prepare against frozen range: %s", res)
	}
}

// TestRangeReacquire: a store that released a range re-acquires it when a
// later handoff installs+commits it back (released-interval subtraction).
func TestRangeReacquire(t *testing.T) {
	s := New(0)
	k := keyInRange(t, lowerHalf, 100)
	apply(s, &Op{Code: OpInsert, Key: k, Value: []byte("v1")})
	s.Apply(EncodeRangeFreeze(1, lowerHalf).Encode())
	apply(s, EncodeTxnDecision(true, 1, 0))
	if res := apply(s, &Op{Code: OpRead, Key: k}); res != WrongShard {
		t.Fatalf("released read: %s", res)
	}
	op, err := EncodeRangeInstall(2, lowerHalf, 0, []RangeRecord{{Key: k, Value: []byte("v2")}})
	if err != nil {
		t.Fatal(err)
	}
	if res := apply(s, op); res != RangeStaged {
		t.Fatalf("install back: %s", res)
	}
	if res := apply(s, EncodeTxnDecision(true, 2, 0)); res != TxnCommitted {
		t.Fatalf("claim commit: %s", res)
	}
	if res := apply(s, &Op{Code: OpRead, Key: k}); res != "v2" {
		t.Fatalf("re-acquired read: %s", res)
	}
	if n := len(s.ReleasedRanges()); n != 0 {
		t.Fatalf("released set after re-acquire: %v", s.ReleasedRanges())
	}
}

// TestRangeSnapshotRestoreCoversHandoffState: a speculative rollback across
// freeze/install/release state must restore all of it, or replicas diverge
// on the decision.
func TestRangeSnapshotRestoreCoversHandoffState(t *testing.T) {
	s := New(0)
	k := keyInRange(t, lowerHalf, 100)
	apply(s, &Op{Code: OpInsert, Key: k, Value: []byte("v")})
	s.Apply(EncodeRangeFreeze(1, lowerHalf).Encode())
	op, _ := EncodeRangeInstall(2, HashRange{Start: lowerHalf.End + 1, End: ^uint64(0)}, 0,
		[]RangeRecord{{Key: keyOutsideRange(t, lowerHalf, 100), Value: []byte("staged")}})
	apply(s, op)
	snap := s.Snapshot()

	// Diverge: decide both handoffs, then roll back.
	apply(s, EncodeTxnDecision(true, 1, 0))
	apply(s, EncodeTxnDecision(false, 2, 0))
	s.Restore(snap)

	// The freeze is live again (conflicting freeze refused), the staging
	// too (commit applies it), and the decisions are forgotten.
	if res := string(s.Apply(EncodeRangeFreeze(3, lowerHalf).Encode())); res != TxnConflict {
		t.Fatalf("freeze state not restored: %s", res)
	}
	if res := apply(s, EncodeTxnDecision(false, 1, 0)); res != TxnAborted {
		t.Fatalf("decision after restore: %s", res)
	}
	if res := apply(s, EncodeTxnDecision(true, 2, 0)); res != TxnCommitted {
		t.Fatalf("staged claim after restore: %s", res)
	}
	if res := apply(s, &Op{Code: OpRead, Key: keyOutsideRange(t, lowerHalf, 100)}); res != "staged" {
		t.Fatalf("staged records not restored: %s", res)
	}
}

// TestTxnCompactPrunesAndRefuses: compaction prunes decided ids at or below
// the watermark; late prepares, decisions, freezes and installs naming a
// pruned id answer TxnStale without acting; ids above the watermark are
// untouched.
func TestTxnCompactPrunesAndRefuses(t *testing.T) {
	s := New(0)
	k := keyInRange(t, lowerHalf, 100)
	prep, err := EncodeTxnPrepare(3, []TxnWrite{{Key: k, Code: OpInsert, Value: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	apply(s, prep)
	apply(s, EncodeTxnDecision(true, 3, 0))
	if _, decided := s.TxnDecision(3); !decided {
		t.Fatal("txn 3 not decided")
	}
	if res := apply(s, EncodeTxnCompact(3)); res != "OK" {
		t.Fatalf("compact: %s", res)
	}
	if s.TxnStableWatermark() != 3 {
		t.Fatalf("watermark %d", s.TxnStableWatermark())
	}
	if _, decided := s.TxnDecision(3); decided {
		t.Fatal("txn 3 survived compaction")
	}
	// Late retries below the watermark: refused safely, nothing installed.
	if res := apply(s, prep); res != TxnStale {
		t.Fatalf("late prepare: %s", res)
	}
	if s.PendingIntents() != 0 {
		t.Fatal("late prepare installed an intent")
	}
	if res := apply(s, EncodeTxnDecision(false, 3, 0)); res != TxnStale {
		t.Fatalf("late decision: %s", res)
	}
	if res := apply(s, &Op{Code: OpRead, Key: k}); res != "v" {
		t.Fatalf("late retry disturbed state: %s", res)
	}
	if res := string(s.Apply(EncodeRangeFreeze(2, lowerHalf).Encode())); res != TxnStale {
		t.Fatalf("late freeze: %s", res)
	}
	op, _ := EncodeRangeInstall(1, lowerHalf, 0, nil)
	if res := apply(s, op); res != TxnStale {
		t.Fatalf("late install: %s", res)
	}
	// The watermark is monotone; a lower compact is a no-op.
	apply(s, EncodeTxnCompact(1))
	if s.TxnStableWatermark() != 3 {
		t.Fatalf("watermark regressed to %d", s.TxnStableWatermark())
	}
	// Fresh ids above the watermark work normally.
	prep4, _ := EncodeTxnPrepare(4, []TxnWrite{{Key: k, Code: OpUpdate, Value: []byte("w")}})
	if res := apply(s, prep4); res != TxnPrepared {
		t.Fatalf("fresh prepare: %s", res)
	}
}

// TestRangeFreezeRefusesInboundOverlap: a freeze over a range this store is
// still staging inbound must refuse. If it succeeded, the export would miss
// the staged records (they apply only on commit), so a chained handoff
// A→B→C racing B's commit would either lose every migrated record or leave
// the interval doubly owned.
func TestRangeFreezeRefusesInboundOverlap(t *testing.T) {
	s := New(0)
	k := keyInRange(t, lowerHalf, 100)
	op, err := EncodeRangeInstall(1, lowerHalf, 0, []RangeRecord{{Key: k, Value: []byte("migrated")}})
	if err != nil {
		t.Fatal(err)
	}
	if res := apply(s, op); res != RangeStaged {
		t.Fatalf("install: %s", res)
	}
	// A second handoff tries to move the same (or an overlapping) interval
	// onward before the first decides: refused, nothing claimed.
	if res := string(s.Apply(EncodeRangeFreeze(2, lowerHalf).Encode())); res != RangeMigrating {
		t.Fatalf("freeze over inbound stage: %s", res)
	}
	part := HashRange{Start: lowerHalf.End / 2, End: lowerHalf.End + 10}
	if res := string(s.Apply(EncodeRangeFreeze(3, part).Encode())); res != RangeMigrating {
		t.Fatalf("freeze over partial inbound overlap: %s", res)
	}
	// Once the inbound handoff commits, the onward freeze succeeds and the
	// export carries the migrated record — no window where it is invisible.
	if res := apply(s, EncodeTxnDecision(true, 1, 0)); res != TxnCommitted {
		t.Fatalf("commit: %s", res)
	}
	recs, ok := DecodeRangeExport(s.Apply(EncodeRangeFreeze(2, lowerHalf).Encode()))
	if !ok || len(recs) != 1 || recs[0].Key != k {
		t.Fatalf("onward freeze after commit: ok=%v recs=%v", ok, recs)
	}
}

// TestRangeInstallMalformedChunkLeavesNoStage: a chunk that fails payload
// validation must not register a stage — otherwise the claimed range refuses
// all reads/writes under a handoff id that may never be decided.
func TestRangeInstallMalformedChunkLeavesNoStage(t *testing.T) {
	s := New(0)
	k := keyInRange(t, lowerHalf, 100)
	good, err := EncodeRangeInstall(4, lowerHalf, 0, []RangeRecord{{Key: k, Value: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the record bytes so the claimed count overruns the payload.
	bad := &Op{Code: OpRangeInstall, Value: good.Value[:len(good.Value)-1]}
	if res := apply(s, bad); res != "ERR" {
		t.Fatalf("truncated chunk: %s", res)
	}
	// No stage was left behind: the range still accepts plain writes, and a
	// valid resend of the same chunk (same hid) stages normally.
	if res := apply(s, &Op{Code: OpInsert, Key: k, Value: []byte("w")}); res != "OK" {
		t.Fatalf("write after malformed install: %s", res)
	}
	if res := apply(s, good); res != RangeStaged {
		t.Fatalf("valid install after malformed one: %s", res)
	}
}

// TestScanSkipsReleasedKeys: a scan iterating into a released interval must
// omit those keys rather than serve their lazy defaults — the records were
// deleted on handoff commit and the destination is authoritative.
func TestScanSkipsReleasedKeys(t *testing.T) {
	s := New(1000) // lazy defaults exist for keys 0..999
	s.Apply(EncodeRangeFreeze(1, lowerHalf).Encode())
	apply(s, EncodeTxnDecision(true, 1, 0)) // release lowerHalf
	start := keyOutsideRange(t, lowerHalf, 0)
	const count = 32
	want := 0
	for k := start; k < start+count; k++ {
		if !lowerHalf.Contains(KeyHash(k)) && k < 1000 {
			want++
		}
	}
	if want == 0 || want == count {
		t.Fatalf("degenerate split: want=%d of %d", want, count)
	}
	res := s.Apply((&Op{Code: OpScan, Key: start, Count: count}).Encode())
	if len(res) != 4 {
		t.Fatalf("scan result: %s", res)
	}
	if got := int(binary.BigEndian.Uint32(res)); got != want {
		t.Fatalf("scan counted %d keys, want %d (released keys must be omitted)", got, want)
	}
}

// TestIntervalSetArithmetic exercises addRange/subtractRange merging and
// splitting, including the top-of-space edge.
func TestIntervalSetArithmetic(t *testing.T) {
	var rs []HashRange
	rs = addRange(rs, HashRange{Start: 10, End: 20})
	rs = addRange(rs, HashRange{Start: 30, End: 40})
	rs = addRange(rs, HashRange{Start: 21, End: 29}) // adjacent both sides → one interval
	if len(rs) != 1 || rs[0] != (HashRange{Start: 10, End: 40}) {
		t.Fatalf("merge: %v", rs)
	}
	rs = addRange(rs, HashRange{Start: ^uint64(0) - 5, End: ^uint64(0)})
	if len(rs) != 2 {
		t.Fatalf("top add: %v", rs)
	}
	rs = subtractRange(rs, HashRange{Start: 15, End: 35})
	if len(rs) != 3 || rs[0] != (HashRange{Start: 10, End: 14}) || rs[1] != (HashRange{Start: 36, End: 40}) {
		t.Fatalf("split: %v", rs)
	}
	if rangesContain(rs, 20) || !rangesContain(rs, 12) || !rangesContain(rs, ^uint64(0)) {
		t.Fatalf("membership: %v", rs)
	}
	rs = subtractRange(rs, HashRange{Start: 0, End: ^uint64(0)})
	if len(rs) != 0 {
		t.Fatalf("full subtract: %v", rs)
	}
}

// TestChunkRangeRecordsBounds: chunking respects the payload budget and an
// empty export still yields one chunk.
func TestChunkRangeRecordsBounds(t *testing.T) {
	if chunks := ChunkRangeRecords(nil); len(chunks) != 1 || len(chunks[0]) != 0 {
		t.Fatalf("empty export chunks: %v", chunks)
	}
	big := make([]RangeRecord, 0, 200)
	val := make([]byte, 1000)
	for i := 0; i < 200; i++ {
		big = append(big, RangeRecord{Key: uint64(i), Value: val})
	}
	chunks := ChunkRangeRecords(big)
	if len(chunks) < 2 {
		t.Fatalf("200KB export fit %d chunk(s)", len(chunks))
	}
	total := 0
	for i, c := range chunks {
		if _, err := EncodeRangeInstall(1, lowerHalf, uint32(i), c); err != nil {
			t.Fatalf("chunk %d does not encode: %v", i, err)
		}
		total += len(c)
	}
	if total != len(big) {
		t.Fatalf("chunking lost records: %d of %d", total, len(big))
	}
}
