package kvstore

import (
	"bytes"
	"testing"
	"testing/quick"

	"flexitrust/internal/crypto"
	"flexitrust/internal/types"
)

func TestOpEncodeDecodeRoundTrip(t *testing.T) {
	ops := []*Op{
		{Code: OpRead, Key: 42},
		{Code: OpUpdate, Key: 1, Value: []byte("hello")},
		{Code: OpInsert, Key: 1 << 40, Value: []byte("x")},
		{Code: OpScan, Key: 10, Count: 16},
		{Code: OpRMW, Key: 3, Value: []byte{0xff, 0x00}},
		{Code: OpNoop},
	}
	for _, op := range ops {
		got, err := DecodeOp(op.Encode())
		if err != nil {
			t.Fatalf("decode %v: %v", op.Code, err)
		}
		if got.Code != op.Code || got.Key != op.Key || got.Count != op.Count ||
			!bytes.Equal(got.Value, op.Value) {
			t.Fatalf("roundtrip: got %+v want %+v", got, op)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		append((&Op{Code: OpUpdate, Key: 1, Value: []byte("abc")}).Encode(), 0xEE), // trailing junk
	}
	for i, c := range cases {
		if _, err := DecodeOp(c); err == nil {
			t.Fatalf("case %d: malformed op decoded", i)
		}
	}
}

func TestLazyDefaultRecords(t *testing.T) {
	s := New(100)
	// Unwritten key below recordCount reads its deterministic default.
	v1 := s.Apply((&Op{Code: OpRead, Key: 5}).Encode())
	v2 := New(100).Apply((&Op{Code: OpRead, Key: 5}).Encode())
	if !bytes.Equal(v1, v2) {
		t.Fatal("default values differ between identical stores")
	}
	// Beyond recordCount: not found.
	if got := s.Apply((&Op{Code: OpRead, Key: 100}).Encode()); string(got) != "NOTFOUND" {
		t.Fatalf("read past end = %q", got)
	}
	// Update of an existing default key persists.
	if got := s.Apply((&Op{Code: OpUpdate, Key: 5, Value: []byte("new")}).Encode()); string(got) != "OK" {
		t.Fatalf("update = %q", got)
	}
	if got := s.Apply((&Op{Code: OpRead, Key: 5}).Encode()); string(got) != "new" {
		t.Fatalf("read after update = %q", got)
	}
	// Update of a missing key fails, insert succeeds.
	if got := s.Apply((&Op{Code: OpUpdate, Key: 500, Value: []byte("x")}).Encode()); string(got) != "NOTFOUND" {
		t.Fatalf("update missing = %q", got)
	}
	if got := s.Apply((&Op{Code: OpInsert, Key: 500, Value: []byte("x")}).Encode()); string(got) != "OK" {
		t.Fatalf("insert = %q", got)
	}
}

func TestMalformedOpIsDeterministicError(t *testing.T) {
	s := New(10)
	if got := s.Apply([]byte{9, 9}); string(got) != "ERR" {
		t.Fatalf("malformed op = %q, want ERR", got)
	}
}

func TestApplyBatchAdvancesStateDigest(t *testing.T) {
	s := New(10)
	reqs := []*types.ClientRequest{
		{Client: 1, ReqNo: 1, Op: (&Op{Code: OpUpdate, Key: 1, Value: []byte("a")}).Encode()},
	}
	b := &types.Batch{Requests: reqs, Digest: crypto.BatchDigest(reqs)}
	before := s.StateDigest()
	results := s.ApplyBatch(b)
	if s.StateDigest() == before {
		t.Fatal("state digest did not advance")
	}
	if len(results) != 1 || string(results[0].Value) != "OK" {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Client != 1 || results[0].ReqNo != 1 {
		t.Fatal("result not attributed to the request")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New(10)
	s.Apply((&Op{Code: OpUpdate, Key: 1, Value: []byte("one")}).Encode())
	snap := s.Snapshot()
	digest := s.StateDigest()
	s.Apply((&Op{Code: OpUpdate, Key: 1, Value: []byte("two")}).Encode())
	s.Apply((&Op{Code: OpInsert, Key: 99, Value: []byte("x")}).Encode())
	s.Restore(snap)
	if s.StateDigest() != digest {
		t.Fatal("digest not restored")
	}
	if got := s.Apply((&Op{Code: OpRead, Key: 1}).Encode()); string(got) != "one" {
		t.Fatalf("restored value = %q", got)
	}
}

// Property: two stores applying the same operation sequence always hold
// identical state digests — execution determinism, which is what checkpoint
// comparison and the safety tests rely on.
func TestDeterministicExecutionProperty(t *testing.T) {
	prop := func(keys []uint16, vals [][]byte) bool {
		a, b := New(1000), New(1000)
		var batch []*types.ClientRequest
		for i, k := range keys {
			var val []byte
			if i < len(vals) {
				val = vals[i]
			}
			op := &Op{Code: OpCode(1 + i%5), Key: uint64(k), Value: val, Count: uint16(i % 8)}
			batch = append(batch, &types.ClientRequest{Client: 1, ReqNo: uint64(i), Op: op.Encode()})
		}
		bb := &types.Batch{Requests: batch, Digest: crypto.BatchDigest(batch)}
		ra := a.ApplyBatch(bb)
		rb := b.ApplyBatch(bb)
		if a.StateDigest() != b.StateDigest() {
			return false
		}
		for i := range ra {
			if !bytes.Equal(ra[i].Value, rb[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/restore is an exact inverse across arbitrary suffixes.
func TestSnapshotRestoreProperty(t *testing.T) {
	prop := func(prefix, suffix []uint16) bool {
		s := New(100)
		for i, k := range prefix {
			s.Apply((&Op{Code: OpUpdate, Key: uint64(k % 100), Value: []byte{byte(i)}}).Encode())
		}
		snap := s.Snapshot()
		want := s.StateDigest()
		for i, k := range suffix {
			s.Apply((&Op{Code: OpInsert, Key: uint64(k) + 1000, Value: []byte{byte(i)}}).Encode())
		}
		s.Restore(snap)
		return s.StateDigest() == want && s.WrittenKeys() <= len(prefix)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestKeyHashSpreadsDenseKeys pins the canonical key hash: it must be a pure
// function (stable across processes — shard routing depends on it) and must
// spread dense integer keys across the value space rather than preserving
// their low bits.
func TestKeyHashSpreadsDenseKeys(t *testing.T) {
	if KeyHash(0) == 0 || KeyHash(1) == 1 {
		t.Fatal("KeyHash looks like identity on small keys")
	}
	if KeyHash(7) != KeyHash(7) {
		t.Fatal("KeyHash is not deterministic")
	}
	// Dense keys must not collide and must populate both halves of the
	// 64-bit space (a low-bit-preserving hash would keep them all small).
	seen := make(map[uint64]bool)
	high := 0
	for k := uint64(0); k < 4096; k++ {
		h := KeyHash(k)
		if seen[h] {
			t.Fatalf("collision at key %d", k)
		}
		seen[h] = true
		if h >= 1<<63 {
			high++
		}
	}
	if high < 4096/4 || high > 3*4096/4 {
		t.Fatalf("dense keys skewed: %d/4096 hashes in the high half", high)
	}
}
