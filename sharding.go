package flexitrust

import (
	"context"
	"time"

	"flexitrust/internal/engine"
	"flexitrust/internal/kvstore"
	"flexitrust/internal/runtime"
	"flexitrust/internal/shard"
	"flexitrust/internal/trusted"
)

// ShardOptions configures a sharded deployment (NewShardedCluster): S
// independent consensus groups — each a full protocol instance with its own
// replicas and a private trusted-counter namespace — behind a deterministic
// keyspace router.
type ShardOptions struct {
	// Shards is the number of consensus groups (default 4).
	Shards int
	// Protocol picks the consensus protocol every group runs (default
	// FlexiBFT). FlexiTrust protocols are the intended choice: their single
	// primary-side trusted-counter access per consensus is what lets groups
	// scale; MinBFT/MinZZ groups each stay bottlenecked by their sequential
	// counter.
	Protocol Protocol
	// F is the per-group fault threshold (default 1); each group runs
	// Protocol.N(F) replicas.
	F int
	// Clients lists the client identities to provision in every group.
	Clients []ClientID
	// BatchSize / BatchTimeout tune per-group batching (defaults 100 / 2ms).
	BatchSize    int
	BatchTimeout time.Duration
	// Records sizes each group's key-value store (default 600k).
	Records int
	// Verbose enables replica logging.
	Verbose bool
}

// ShardedCluster is a running sharded deployment. Operations are routed to
// the shard owning their key under the cluster's epoch-versioned placement
// map (single-shard fast path); cross-shard reads go through
// ShardSession.MultiGet, which is fenced by per-shard commit watermarks
// (read-committed) and reports keys blocked by a pending transaction
// intent explicitly. Cross-shard writes are atomic through
// ShardSession.MultiPut / ShardSession.Txn: two-phase commit over the
// groups with the cluster's attested counter as the commit-point arbiter
// (see the package docs' "Cross-shard transactions" section). Hash ranges
// migrate live between groups through ShardSession.Rebalance (see
// "Elastic placement & rebalancing").
type ShardedCluster struct {
	inner *shard.Cluster
	opts  ShardOptions
}

// ShardSession is a client identity's routing handle into every shard. It
// routes by its cached placement epoch and transparently retries through
// refreshed epochs when a range moves under it.
type ShardSession = shard.Session

// ShardVector is the per-shard version vector a MultiGet was read at.
type ShardVector = shard.ShardVector

// KeyRange is a contiguous interval of the 64-bit key-HASH space (both
// ends inclusive) — the unit of placement and rebalancing. Ranges are over
// kvstore.KeyHash values, not raw keys.
type KeyRange = shard.Range

// PlacementMap is the epoch-versioned assignment of hash ranges to
// consensus groups (immutable; rebalancing installs successors).
type PlacementMap = shard.PlacementMap

// RebalanceResult reports one live range handoff's outcome
// (ShardSession.Rebalance).
type RebalanceResult = shard.RebalanceResult

// TxnWrite is one write of a cross-shard transaction (ShardSession.Txn):
// Code is OpUpdate-style (key must exist) when built with UpdateWrite, or
// blind-upsert when built with InsertWrite.
type TxnWrite = kvstore.TxnWrite

// ReadResult is one key's outcome in a MultiGet: the committed value plus
// an explicit pending-transaction-intent signal (BlockedBy).
type ReadResult = kvstore.ReadResult

// UpdateWrite builds a transactional write requiring the key to exist.
func UpdateWrite(key uint64, value []byte) TxnWrite {
	return TxnWrite{Key: key, Code: kvstore.OpUpdate, Value: value}
}

// InsertWrite builds a transactional blind-upsert write.
func InsertWrite(key uint64, value []byte) TxnWrite {
	return TxnWrite{Key: key, Code: kvstore.OpInsert, Value: value}
}

// NewShardedCluster boots S in-process consensus groups behind the keyspace
// router. Each group is a real cluster (goroutine replicas, Ed25519
// signatures, HMAC-attested trusted components) whose trusted-counter
// identifiers live in a namespace private to the shard.
func NewShardedCluster(opts ShardOptions) (*ShardedCluster, error) {
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	if opts.F <= 0 {
		opts.F = 1
	}
	n := opts.Protocol.N(opts.F)
	ecfg := engine.DefaultConfig(n, opts.F)
	if opts.BatchSize > 0 {
		ecfg.BatchSize = opts.BatchSize
	}
	if opts.BatchTimeout > 0 {
		ecfg.BatchTimeout = opts.BatchTimeout
	}
	inner, err := shard.NewCluster(shard.Config{
		Shards: opts.Shards,
		Group: runtime.ClusterConfig{
			N: n, F: opts.F,
			Engine:         ecfg,
			NewProtocol:    constructor(opts.Protocol),
			Replies:        opts.Protocol.Replies(n, opts.F),
			Clients:        opts.Clients,
			TrustedProfile: trusted.ProfileSGXEnclave,
			KeepLog:        trustedKeepLog(opts.Protocol),
			Records:        opts.Records,
			Verbose:        opts.Verbose,
		},
	})
	if err != nil {
		return nil, err
	}
	return &ShardedCluster{inner: inner, opts: opts}, nil
}

// Session attaches a routing client for one of the provisioned ids.
func (c *ShardedCluster) Session(id ClientID) *ShardSession { return c.inner.Session(id) }

// Shards returns the number of consensus groups.
func (c *ShardedCluster) Shards() int { return c.inner.Shards() }

// ShardFor maps a key to its owning group index under the current
// placement epoch.
func (c *ShardedCluster) ShardFor(key uint64) int { return c.inner.ShardFor(key) }

// HashKey returns the canonical 64-bit hash of a store key — the value
// KeyRange placement intervals are expressed over (kvstore.KeyHash).
func HashKey(key uint64) uint64 { return kvstore.KeyHash(key) }

// TxnLogLen returns the number of decisions the cluster's attestation log
// currently retains (shrinks under ShardSession.CompactTxnHistory).
func (c *ShardedCluster) TxnLogLen() int { return c.inner.TxnLog().Len() }

// Placement returns the installed placement map.
func (c *ShardedCluster) Placement() *PlacementMap { return c.inner.Placement() }

// PlacementEpoch returns the installed placement's epoch (starts at 1;
// every committed rebalance advances it).
func (c *ShardedCluster) PlacementEpoch() uint64 { return c.inner.Placement().Epoch() }

// Watermarks snapshots every shard's committed-sequence watermark.
func (c *ShardedCluster) Watermarks() ShardVector { return c.inner.Watermarks() }

// Stats aggregates per-shard throughput/latency into cluster-level numbers.
func (c *ShardedCluster) Stats() shard.Stats { return c.inner.Stats() }

// Stop halts every group.
func (c *ShardedCluster) Stop() { c.inner.Stop() }

// DoOp routes an already-built kv operation (Read/Update/Insert/Scan
// helpers) through a session. It decodes the payload to find the routing
// key; prefer the typed ShardSession methods for new code.
func DoOp(ctx context.Context, s *ShardSession, op []byte) ([]byte, error) {
	decoded, err := kvstore.DecodeOp(op)
	if err != nil {
		return nil, err
	}
	return s.Do(ctx, decoded)
}

// ShardStateDigest returns replica r of group s's state-machine digest
// (read on the replica's event goroutine, so it is safe while running).
func (c *ShardedCluster) ShardStateDigest(s int, r ReplicaID) Digest {
	d, _ := c.inner.Group(s).Runtime().Nodes[r].DigestSnapshot()
	return d
}
