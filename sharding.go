package flexitrust

import (
	"context"
	"time"

	"flexitrust/internal/engine"
	"flexitrust/internal/kvstore"
	"flexitrust/internal/obs"
	"flexitrust/internal/runtime"
	"flexitrust/internal/shard"
	"flexitrust/internal/trusted"
)

// ShardOptions configures a sharded deployment (NewShardedCluster): S
// independent consensus groups — each a full protocol instance with its own
// replicas and a private trusted-counter namespace — behind a deterministic
// keyspace router.
type ShardOptions struct {
	// Shards is the number of consensus groups (default 4).
	Shards int
	// Protocol picks the consensus protocol every group runs (default
	// FlexiBFT). FlexiTrust protocols are the intended choice: their single
	// primary-side trusted-counter access per consensus is what lets groups
	// scale; MinBFT/MinZZ groups each stay bottlenecked by their sequential
	// counter.
	Protocol Protocol
	// F is the per-group fault threshold (default 1); each group runs
	// Protocol.N(F) replicas.
	F int
	// Clients lists the client identities to provision in every group.
	Clients []ClientID
	// BatchSize / BatchTimeout tune per-group batching (defaults 100 / 2ms).
	BatchSize    int
	BatchTimeout time.Duration
	// Records sizes each group's key-value store (default 600k).
	Records int
	// ViewChangeTimeout is how long a replica waits on a stalled request
	// before suspecting its primary (default 500ms). Failover latency is
	// bounded below by it; deployments that want snappy recovery tune it
	// here instead of reaching into internal/engine.
	ViewChangeTimeout time.Duration
	// ClientRetry is the client library's re-broadcast interval for
	// unresolved requests (default 1s). Primary-failure recovery is
	// resend-driven — the re-broadcast is what makes backups suspect a
	// dead primary — so set it near ViewChangeTimeout for fast failover.
	ClientRetry time.Duration
	// StallTimeout is the health monitor's failover threshold: a group
	// degraded (or not progressing under demand) this long classifies
	// Stalled — sessions fail fast against it and Failover may evacuate
	// its ranges. Default: 4× ViewChangeTimeout.
	StallTimeout time.Duration
	// ReadLease enables the leader read-lease fast path: each group grants
	// its primary a consensus-committed, counter-attested lease, and
	// sessions serve fenced single-key Gets (and one-shard MultiGets) from
	// that primary without a consensus round — falling back transparently
	// whenever the lease binding fails (see the package docs' "Leased
	// reads" section). Off by default.
	ReadLease bool
	// LeaseDuration bounds how long one committed grant authorizes local
	// serving before the primary must re-grant (default 100ms).
	LeaseDuration time.Duration
	// Observe enables cluster-wide observability: request tracing, the
	// metrics registry, the attested-access audit stream and the
	// control-plane event journal (see ShardedCluster.Observe).
	Observe ObserveOptions
	// Verbose enables replica logging.
	Verbose bool
}

// ShardedCluster is a running sharded deployment. Operations are routed to
// the shard owning their key under the cluster's epoch-versioned placement
// map (single-shard fast path); cross-shard reads go through
// ShardSession.MultiGet, which is fenced by per-shard commit watermarks
// (read-committed) and reports keys blocked by a pending transaction
// intent explicitly. Cross-shard writes are atomic through
// ShardSession.MultiPut / ShardSession.Txn: two-phase commit over the
// groups with the cluster's attested counter as the commit-point arbiter
// (see the package docs' "Cross-shard transactions" section). Hash ranges
// migrate live between groups through ShardSession.Rebalance (see
// "Elastic placement & rebalancing").
type ShardedCluster struct {
	inner *shard.Cluster
	opts  ShardOptions
}

// ShardSession is a client identity's routing handle into every shard. It
// routes by its cached placement epoch and transparently retries through
// refreshed epochs when a range moves under it.
type ShardSession = shard.Session

// ShardVector is the per-shard version vector a MultiGet was read at.
type ShardVector = shard.ShardVector

// KeyRange is a contiguous interval of the 64-bit key-HASH space (both
// ends inclusive) — the unit of placement and rebalancing. Ranges are over
// kvstore.KeyHash values, not raw keys.
type KeyRange = shard.Range

// PlacementMap is the epoch-versioned assignment of hash ranges to
// consensus groups (immutable; rebalancing installs successors).
type PlacementMap = shard.PlacementMap

// RebalanceResult reports one live range handoff's outcome
// (ShardSession.Rebalance).
type RebalanceResult = shard.RebalanceResult

// GroupHealth is one shard's classified health sample (ShardSession.Health
// / ShardedCluster.Health): current view, primary, replicas up, commit
// watermark and the Healthy / ViewChanging / Stalled classification.
type GroupHealth = shard.GroupHealth

// GroupState classifies one shard's health.
type GroupState = shard.GroupState

// The health states.
const (
	// GroupHealthy: the shard is committing normally.
	GroupHealthy = shard.GroupHealthy
	// GroupViewChanging: the shard is electing a new primary; sessions
	// back off briefly and ride through.
	GroupViewChanging = shard.GroupViewChanging
	// GroupStalled: the shard is degraded past the stall threshold;
	// sessions fail fast with ErrShardDegraded and Failover may evacuate
	// its ranges.
	GroupStalled = shard.GroupStalled
)

// FailoverResult reports one failover evacuation (ShardedCluster.Failover):
// the evacuated group and the attested handoff of each of its ranges.
type FailoverResult = shard.FailoverResult

// ErrShardDegraded marks an operation refused fast because its target
// shard is classified Stalled (errors.Is-comparable).
var ErrShardDegraded = shard.ErrShardDegraded

// ErrUnroutable marks an operation whose placement never converged after
// exhausting the session's routing retries (errors.Is-comparable).
var ErrUnroutable = shard.ErrUnroutable

// TxnWrite is one write of a cross-shard transaction (ShardSession.Txn):
// Code is OpUpdate-style (key must exist) when built with UpdateWrite, or
// blind-upsert when built with InsertWrite.
type TxnWrite = kvstore.TxnWrite

// ReadResult is one key's outcome in a MultiGet: the committed value plus
// an explicit pending-transaction-intent signal (BlockedBy).
type ReadResult = kvstore.ReadResult

// UpdateWrite builds a transactional write requiring the key to exist.
func UpdateWrite(key uint64, value []byte) TxnWrite {
	return TxnWrite{Key: key, Code: kvstore.OpUpdate, Value: value}
}

// InsertWrite builds a transactional blind-upsert write.
func InsertWrite(key uint64, value []byte) TxnWrite {
	return TxnWrite{Key: key, Code: kvstore.OpInsert, Value: value}
}

// NewShardedCluster boots S in-process consensus groups behind the keyspace
// router. Each group is a real cluster (goroutine replicas, Ed25519
// signatures, HMAC-attested trusted components) whose trusted-counter
// identifiers live in a namespace private to the shard.
func NewShardedCluster(opts ShardOptions) (*ShardedCluster, error) {
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	if opts.F <= 0 {
		opts.F = 1
	}
	n := opts.Protocol.N(opts.F)
	ecfg := engine.DefaultConfig(n, opts.F)
	if opts.BatchSize > 0 {
		ecfg.BatchSize = opts.BatchSize
	}
	if opts.BatchTimeout > 0 {
		ecfg.BatchTimeout = opts.BatchTimeout
	}
	if opts.ViewChangeTimeout > 0 {
		ecfg.ViewChangeTimeout = opts.ViewChangeTimeout
	}
	ecfg.ReadLease = opts.ReadLease
	if opts.LeaseDuration > 0 {
		ecfg.LeaseDuration = opts.LeaseDuration
	}
	var observer *obs.Observer
	if opts.Observe.Enabled {
		observer = obs.New(obs.Config{
			SampleRate:  opts.Observe.SampleRate,
			TraceBuffer: opts.Observe.TraceBuffer,
		})
	}
	scfg := shard.Config{
		Shards: opts.Shards,
		Group: runtime.ClusterConfig{
			N: n, F: opts.F,
			Engine:         ecfg,
			NewProtocol:    constructor(opts.Protocol),
			Replies:        opts.Protocol.Replies(n, opts.F),
			Clients:        opts.Clients,
			ClientRetry:    opts.ClientRetry,
			TrustedProfile: trusted.ProfileSGXEnclave,
			KeepLog:        trustedKeepLog(opts.Protocol),
			Records:        opts.Records,
			Verbose:        opts.Verbose,
		},
		Health: shard.HealthConfig{StallAfter: opts.StallTimeout},
		Obs:    observer,
	}
	if opts.Observe.Enabled && opts.Observe.Rules.Enabled {
		scfg.RulesEnabled = true
		scfg.RulesEvery = opts.Observe.Rules.EvalEvery
		scfg.FlightDir = opts.Observe.Rules.FlightDir
		scfg.Rules = obs.RulesConfig{
			ErrorRatePerSec: opts.Observe.Rules.ErrorRatePerSec,
			LatencyP99:      opts.Observe.Rules.LatencyP99SLO,
			OnAlert:         opts.Observe.Rules.OnAlert,
		}
	}
	inner, err := shard.NewCluster(scfg)
	if err != nil {
		return nil, err
	}
	return &ShardedCluster{inner: inner, opts: opts}, nil
}

// Session attaches a routing client for one of the provisioned ids.
func (c *ShardedCluster) Session(id ClientID) *ShardSession { return c.inner.Session(id) }

// Shards returns the number of consensus groups.
func (c *ShardedCluster) Shards() int { return c.inner.Shards() }

// ShardFor maps a key to its owning group index under the current
// placement epoch.
func (c *ShardedCluster) ShardFor(key uint64) int { return c.inner.ShardFor(key) }

// HashKey returns the canonical 64-bit hash of a store key — the value
// KeyRange placement intervals are expressed over (kvstore.KeyHash).
func HashKey(key uint64) uint64 { return kvstore.KeyHash(key) }

// TxnLogLen returns the number of decisions the cluster's attestation log
// currently retains (shrinks under ShardSession.CompactTxnHistory).
func (c *ShardedCluster) TxnLogLen() int { return c.inner.TxnLog().Len() }

// Placement returns the installed placement map.
func (c *ShardedCluster) Placement() *PlacementMap { return c.inner.Placement() }

// PlacementEpoch returns the installed placement's epoch (starts at 1;
// every committed rebalance advances it).
func (c *ShardedCluster) PlacementEpoch() uint64 { return c.inner.Placement().Epoch() }

// Watermarks snapshots every shard's committed-sequence watermark.
func (c *ShardedCluster) Watermarks() ShardVector { return c.inner.Watermarks() }

// Stats aggregates per-shard throughput/latency into cluster-level numbers
// (including per-group view numbers and the cluster view-change count).
func (c *ShardedCluster) Stats() shard.Stats { return c.inner.Stats() }

// Health samples (rate-limited) every shard's health classification.
func (c *ShardedCluster) Health() []GroupHealth { return c.inner.Health() }

// StopReplica fail-stops replica r of shard s (failure injection; the
// group's remaining replicas elect a new primary when the stopped one led).
func (c *ShardedCluster) StopReplica(s int, r ReplicaID) {
	c.inner.Group(s).Runtime().StopReplica(r)
}

// RestartReplica restarts a stopped replica of shard s under its original
// identity and keys (see runtime.Cluster.RestartReplica for the state
// caveats).
func (c *ShardedCluster) RestartReplica(s int, r ReplicaID) {
	c.inner.Group(s).Runtime().RestartReplica(r)
}

// Failover evacuates every range shard `group` owns to the currently
// healthy shards, through sess's identity: each range moves as one attested
// placement change (exactly one attested counter access, first-wins per
// epoch — two concurrent failovers can never both re-point a range). The
// evacuation's own traffic drives a wedged group's view change, so a group
// that is merely primary-less recovers as its data leaves.
func (c *ShardedCluster) Failover(ctx context.Context, sess *ShardSession, group int) (*FailoverResult, error) {
	return shard.NewFailoverOrchestrator(sess).EvacuateGroup(ctx, group, shard.FailoverOptions{})
}

// Stop halts every group.
func (c *ShardedCluster) Stop() { c.inner.Stop() }

// DoOp routes an already-built kv operation (Read/Update/Insert/Scan
// helpers) through a session. It decodes the payload to find the routing
// key; prefer the typed ShardSession methods for new code.
func DoOp(ctx context.Context, s *ShardSession, op []byte) ([]byte, error) {
	decoded, err := kvstore.DecodeOp(op)
	if err != nil {
		return nil, err
	}
	return s.Do(ctx, decoded)
}

// ShardStateDigest returns replica r of group s's state-machine digest
// (read on the replica's event goroutine, so it is safe while running).
func (c *ShardedCluster) ShardStateDigest(s int, r ReplicaID) Digest {
	d, _ := c.inner.Group(s).Runtime().Node(r).DigestSnapshot()
	return d
}
