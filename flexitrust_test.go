package flexitrust

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the documented public surface end to end
// for each protocol a downstream user can pick.
func TestPublicAPIQuickstart(t *testing.T) {
	for _, proto := range []Protocol{FlexiBFT, FlexiZZ, PBFT, MinBFT} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			cluster, err := NewCluster(ClusterOptions{
				Protocol:  proto,
				F:         1,
				Clients:   []ClientID{1},
				BatchSize: 2,
				Records:   1000,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Stop()
			client := cluster.NewClient(1)
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			for i := uint64(0); i < 6; i++ {
				res, err := client.Submit(ctx, Update(i, []byte(fmt.Sprintf("v%d", i))))
				if err != nil {
					t.Fatalf("update %d: %v", i, err)
				}
				if string(res) != "OK" {
					t.Fatalf("update result %q", res)
				}
			}
			res, err := client.Submit(ctx, Read(3))
			if err != nil {
				t.Fatal(err)
			}
			if string(res) != "v3" {
				t.Fatalf("read = %q, want v3", res)
			}
		})
	}
}

func TestProtocolMetadata(t *testing.T) {
	if FlexiBFT.N(8) != 25 || MinBFT.N(8) != 17 {
		t.Fatal("replication factors wrong")
	}
	if FlexiZZ.Replies(25, 8) != 17 {
		t.Fatal("Flexi-ZZ reply quorum must be 2f+1")
	}
	if Zyzzyva.Replies(25, 8) != 25 || MinZZ.Replies(17, 8) != 17 {
		t.Fatal("speculative baselines need all replicas on the fast path")
	}
	if PBFT.Replies(25, 8) != 9 {
		t.Fatal("PBFT clients need f+1 matching replies")
	}
	for _, p := range []Protocol{FlexiBFT, FlexiZZ, PBFT, Zyzzyva, PBFTEA, MinBFT, MinZZ} {
		if p.String() == "Protocol?" {
			t.Fatalf("protocol %d has no name", p)
		}
	}
}

// TestScanAndInsertOps covers the remaining public op builders.
func TestScanAndInsertOps(t *testing.T) {
	cluster, err := NewCluster(ClusterOptions{
		Protocol: FlexiBFT, F: 1, Clients: []ClientID{1}, BatchSize: 1, Records: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	client := cluster.NewClient(1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if res, err := client.Submit(ctx, Insert(5000, []byte("x"))); err != nil || string(res) != "OK" {
		t.Fatalf("insert: %q %v", res, err)
	}
	res, err := client.Submit(ctx, Scan(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("scan result %v", res)
	}
}
