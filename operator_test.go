package flexitrust

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"flexitrust/internal/obs"
)

// TestOperatorSurface is the acceptance test for the operator surface: a
// real sharded runtime with the rules engine and flight recorder armed
// serves /metrics and /healthz cleanly under traffic with zero alerts and
// zero audit alarms — then a primary crash drives a stall alert through
// the watch loop with no client traffic at all, and the resulting
// post-mortem bundle carries the causally-ordered evidence (audit
// records, the health transition, the alert) in one document.
func TestOperatorSurface(t *testing.T) {
	flightDir := t.TempDir()
	// The OnAlert callback runs on the cluster's watch-loop goroutine.
	var alertMu sync.Mutex
	var alerted []AlertRecord
	alertCount := func() int {
		alertMu.Lock()
		defer alertMu.Unlock()
		return len(alerted)
	}
	cluster, err := NewShardedCluster(ShardOptions{
		Shards:            2,
		Protocol:          FlexiBFT,
		F:                 1,
		Clients:           []ClientID{1},
		BatchSize:         4,
		Records:           1000,
		ViewChangeTimeout: 150 * time.Millisecond,
		ClientRetry:       200 * time.Millisecond,
		StallTimeout:      300 * time.Millisecond,
		Observe: ObserveOptions{
			Enabled:    true,
			SampleRate: 1.0,
			Rules: RulesOptions{
				Enabled:   true,
				EvalEvery: 10 * time.Millisecond,
				FlightDir: flightDir,
				OnAlert: func(a AlertRecord) {
					alertMu.Lock()
					alerted = append(alerted, a)
					alertMu.Unlock()
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	sess := cluster.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Clean traffic across both shards, including one cross-shard
	// transaction so the attested decision path is on the audit stream.
	for k := uint64(0); k < 8; k++ {
		if err := sess.Put(ctx, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	txnKeys := map[int]uint64{}
	for k := uint64(1000); len(txnKeys) < 2; k++ {
		if _, ok := txnKeys[cluster.ShardFor(k)]; !ok {
			txnKeys[cluster.ShardFor(k)] = k
		}
	}
	if err := sess.MultiPut(ctx, map[uint64][]byte{
		txnKeys[0]: []byte("txn-0"), txnKeys[1]: []byte("txn-1"),
	}); err != nil {
		t.Fatal(err)
	}

	// --- Clean path: the admin surface under a live scrape. ---
	srv := httptest.NewServer(cluster.ObserveHandler())
	defer srv.Close()
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?$`)
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("short exposition:\n%s", body)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "# TYPE ") && !lineRE.MatchString(ln) {
			t.Fatalf("malformed exposition line %q", ln)
		}
	}
	if !strings.Contains(string(body), "flexitrust_obs_audit_alarms 0") {
		t.Fatalf("clean run must expose zero alarms:\n%s", body)
	}
	if !strings.Contains(string(body), `flexitrust_shard_committed{shard="0"}`) ||
		!strings.Contains(string(body), `flexitrust_shard_committed{shard="1"}`) {
		t.Fatal("per-shard series missing from exposition")
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("/healthz clean: %d %s", code, body)
	}

	code, body = get("/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json: %d", code)
	}
	var doc ObsExport
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("export does not parse: %v", err)
	}
	if doc.Schema != obs.ExportSchema {
		t.Fatalf("schema %q", doc.Schema)
	}
	if len(doc.Shards) != 2 {
		t.Fatalf("shards %+v", doc.Shards)
	}
	for _, sh := range doc.Shards {
		if sh.Committed == 0 || sh.Health != "healthy" {
			t.Fatalf("clean shard export %+v", sh)
		}
	}
	if doc.Audit.Accesses == 0 || len(doc.Audit.Alarms) != 0 {
		t.Fatalf("audit accounting %+v", doc.Audit)
	}
	// Exactly-one-attested-access invariants: the checker alarms on any
	// violation, so zero alarms with decisions recorded is the proof.
	if len(doc.Audit.Decisions) == 0 {
		t.Fatal("cross-shard transaction minted no audit decision")
	}
	if len(cluster.Alerts()) != 0 || alertCount() != 0 {
		t.Fatalf("false alarms on a clean run: %+v", cluster.Alerts())
	}
	if got := cluster.FlightRecords(); len(got) != 0 {
		t.Fatalf("flight recorder fired on a clean run: %v", got)
	}

	// --- Induced incident: crash shard 0's primary and then send no
	// traffic at all. The cluster watch loop alone must notice the group
	// degrade to stalled, fire the alert and persist the bundle. ---
	cluster.StopReplica(0, 0)

	deadline := time.Now().Add(30 * time.Second)
	var stall *AlertRecord
	for time.Now().Before(deadline) && stall == nil {
		for _, a := range cluster.Alerts() {
			if a.Rule == obs.RuleStall && a.Group == 0 {
				al := a
				stall = &al
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if stall == nil {
		t.Fatalf("no stall alert within deadline; alerts: %+v, health: %+v",
			cluster.Alerts(), cluster.Health())
	}

	var bundles []string
	for time.Now().Before(deadline) && len(bundles) == 0 {
		bundles = cluster.FlightRecords()
		time.Sleep(20 * time.Millisecond)
	}
	if len(bundles) == 0 {
		t.Fatal("no flight record written after the stall alert")
	}

	data, err := os.ReadFile(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	var rec FlightRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if rec.Schema != obs.FlightSchema || !strings.HasPrefix(rec.Reason, "alert-") {
		t.Fatalf("bundle schema %q reason %q", rec.Schema, rec.Reason)
	}
	if rec.Export.Audit.Accesses == 0 {
		t.Fatal("bundle carries no audit evidence")
	}
	// The journal suffix must tell the story in causal order: a
	// health transition into stalled, then the alert, with one shared
	// sequence numbering both streams.
	events := rec.Export.Journal.Events
	transitionSeq, alertSeq := uint64(0), uint64(0)
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("journal seqs not increasing: %+v then %+v", events[i-1], events[i])
		}
	}
	for _, ev := range events {
		if ev.Kind == obs.EventHealthTransition && ev.Group == 0 &&
			strings.HasSuffix(ev.Detail, "-> stalled") && transitionSeq == 0 {
			transitionSeq = ev.Seq
		}
		if ev.Kind == obs.EventAlert && ev.Seq == stall.Seq {
			alertSeq = ev.Seq
		}
	}
	if transitionSeq == 0 || alertSeq == 0 || transitionSeq >= alertSeq {
		t.Fatalf("causal evidence chain broken: transition seq %d, alert seq %d\n%+v",
			transitionSeq, alertSeq, events)
	}
	found := false
	for _, a := range rec.Export.Alerts.Records {
		if a.Rule == obs.RuleStall && a.Group == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stall alert missing from bundle: %+v", rec.Export.Alerts)
	}

	// The degraded group flips /healthz to 503.
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with a stalled shard: %d %s", code, body)
	}
	if alertCount() == 0 {
		t.Fatal("OnAlert callback never fired")
	}
}
