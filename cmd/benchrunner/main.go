// Command benchrunner regenerates the paper's evaluation figures and tables
// on the discrete-event harness and prints them as text tables.
//
// Usage:
//
//	benchrunner -exp all            # every experiment, quick scale
//	benchrunner -exp fig6i -full    # one experiment at publication scale
//	benchrunner -list
//
// Experiments: fig1, fig5, fig6i, fig6ii, fig6iv, fig6vi, fig7, fig8, fig9,
// shard.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flexitrust/internal/harness"
)

// experiment couples a name with its runner.
type experiment struct {
	name, desc string
	run        func(scale harness.Scale) string
}

// experiments lists every reproducible figure/table.
func experiments() []experiment {
	return []experiment{
		{"fig1", "qualitative protocol comparison matrix",
			func(harness.Scale) string { return harness.Fig1Matrix() }},
		{"fig5", "trusted counter + signature attestation costs on Pbft (1 worker)",
			func(s harness.Scale) string { return harness.Fig5(s).String() }},
		{"fig6i", "throughput vs latency, 4k-80k clients, f=8",
			func(s harness.Scale) string { return harness.Fig6Throughput(nil, s).String() }},
		{"fig6ii", "scalability, f=4..32",
			func(s harness.Scale) string { return harness.Fig6Scalability(nil, s).String() }},
		{"fig6iv", "batch size sweep 10..5000, f=8",
			func(s harness.Scale) string { return harness.Fig6Batching(nil, s).String() }},
		{"fig6vi", "wide-area replication across 1..6 regions, f=20",
			func(s harness.Scale) string { return harness.Fig6WAN(nil, s).String() }},
		{"fig7", "single non-primary replica failure",
			func(s harness.Scale) string { return harness.Fig7Failure(nil, s).String() }},
		{"fig8", "trusted-counter access cost sweep at 97 replicas",
			func(s harness.Scale) string { return harness.Fig8TCSweep(nil, s).String() }},
		{"fig9", "throughput-per-machine, Flexi-ZZ vs MinZZ",
			func(s harness.Scale) string { return harness.Fig9PerMachine(nil, s).String() }},
		{"shard", "shard scaling: co-located consensus groups, FlexiTrust vs MinBFT/MinZZ",
			func(s harness.Scale) string { return harness.FigShardScaling(nil, s).String() }},
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list) or 'all'")
	full := flag.Bool("full", false, "publication-scale windows (slower)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments() {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}
	scale := harness.Scale(4)
	if *full {
		scale = 1
	}
	ran := false
	for _, e := range experiments() {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Println(e.run(scale))
		fmt.Printf("(%s completed in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
		os.Exit(2)
	}
}
