// Command benchrunner regenerates the paper's evaluation figures and tables
// on the discrete-event harness and prints them as text tables.
//
// Usage:
//
//	benchrunner -exp all            # every experiment, quick scale
//	benchrunner -exp fig6i -full    # one experiment at publication scale
//	benchrunner -exp shard -mode shared -scale 16 -shards 1,4   # CI smoke
//	benchrunner -bench-out BENCH_baseline.json -scale 16        # record baseline
//	benchrunner -bench-validate BENCH_baseline.json             # schema check
//	benchrunner -exp shard -scale 16 -obs-dump obs.json         # observability export per run
//	benchrunner -list
//
// Experiments: fig1, fig5, fig6i, fig6ii, fig6iv, fig6vi, fig7, fig8, fig9,
// shard, txn, rebalance, failover, qc, reads, window.
//
// Profiling: -cpuprofile / -memprofile write pprof data covering whatever
// the invocation runs (experiments or the baseline matrix), e.g.
//
//	benchrunner -exp qc -scale 16 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"flexitrust/internal/harness"
)

// experiment couples a name with its runner.
type experiment struct {
	name, desc string
	run        func(scale harness.Scale) string
}

// shardCounts holds the -shards sweep for the shard experiment (nil =
// default 1,2,4,8).
var shardCounts []int

// experiments lists every reproducible figure/table.
func experiments() []experiment {
	return []experiment{
		{"fig1", "qualitative protocol comparison matrix",
			func(harness.Scale) string { return harness.Fig1Matrix() }},
		{"fig5", "trusted counter + signature attestation costs on Pbft (1 worker)",
			func(s harness.Scale) string { return harness.Fig5(s).String() }},
		{"fig6i", "throughput vs latency, 4k-80k clients, f=8",
			func(s harness.Scale) string { return harness.Fig6Throughput(nil, s).String() }},
		{"fig6ii", "scalability, f=4..32",
			func(s harness.Scale) string { return harness.Fig6Scalability(nil, s).String() }},
		{"fig6iv", "batch size sweep 10..5000, f=8",
			func(s harness.Scale) string { return harness.Fig6Batching(nil, s).String() }},
		{"fig6vi", "wide-area replication across 1..6 regions, f=20",
			func(s harness.Scale) string { return harness.Fig6WAN(nil, s).String() }},
		{"fig7", "single non-primary replica failure",
			func(s harness.Scale) string { return harness.Fig7Failure(nil, s).String() }},
		{"fig8", "trusted-counter access cost sweep at 97 replicas",
			func(s harness.Scale) string { return harness.Fig8TCSweep(nil, s).String() }},
		{"fig9", "throughput-per-machine, Flexi-ZZ vs MinZZ",
			func(s harness.Scale) string { return harness.Fig9PerMachine(nil, s).String() }},
		{"shard", "shard scaling: co-located consensus groups in one shared kernel, FlexiTrust vs MinBFT/MinZZ",
			func(s harness.Scale) string { return harness.FigShardScaling(shardCounts, s).String() }},
		{"txn", "cross-shard 2PC transactions: attested commit point under co-location, FlexiBFT vs MinBFT",
			func(s harness.Scale) string { return harness.FigTxnScaling(shardCounts, s) }},
		{"rebalance", "live shard rebalancing: mid-workload range handoff with an attested placement flip, FlexiBFT vs MinBFT",
			func(s harness.Scale) string { return harness.FigRebalance(shardCounts, s) }},
		{"failover", "per-shard failover: primary crash mid-workload, health-driven evacuation as an attested placement change, FlexiBFT vs MinBFT",
			func(s harness.Scale) string { return harness.FigFailover(shardCounts, s) }},
		{"qc", "aggregated quorum certificates + off-thread verification A/B, QC on vs off at 1 and 4 shards",
			func(s harness.Scale) string { return harness.FigQC(shardCounts, s).String() }},
		{"reads", "leased linearizable reads A/B under a read-heavy mix, lease on vs off at 1 and 4 shards",
			func(s harness.Scale) string { return harness.FigReadLease(shardCounts, s).String() }},
		{"window", "windowed amortized attestation A/B: one counter access per pipeline window vs per batch, Flexi-BFT and Flexi-ZZ",
			func(s harness.Scale) string { return harness.FigAttestWindow(shardCounts, s).String() }},
	}
}

// parseShards turns "1,2,4" into a sweep list.
func parseShards(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list) or 'all'")
	full := flag.Bool("full", false, "publication-scale windows (slower)")
	scaleFlag := flag.Int("scale", 4, "window divisor for quick runs (ignored with -full; larger = shorter)")
	mode := flag.String("mode", "shared", "shard-experiment simulation mode: 'shared' runs all groups in one kernel (the analytic 'merged' mode was removed)")
	shards := flag.String("shards", "", "comma-separated shard counts for -exp shard / txn / rebalance / failover / reads (defaults 1,2,4,8 / 4 / 4 / 4 / 1,4)")
	list := flag.Bool("list", false, "list experiments and exit")
	benchOut := flag.String("bench-out", "", "run the BENCH baseline matrix at -scale and write flexitrust-bench/v1 JSON to this path ('-' = stdout)")
	benchValidate := flag.String("bench-validate", "", "validate an existing flexitrust-bench/v1 baseline file and exit")
	obsDump := flag.String("obs-dump", "", "write a JSON array of flexitrust-obs/v1 exports (one per shared-kernel run of the shard/txn/rebalance/failover/qc experiments) to this path ('-' = stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the run to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this path")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *benchValidate != "" {
		data, err := os.ReadFile(*benchValidate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		b, err := harness.ValidateBench(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok (%s, %d entries, scale %d, seed %d)\n",
			*benchValidate, b.Schema, len(b.Entries), b.Scale, b.Seed)
		return
	}

	if *list {
		for _, e := range experiments() {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}
	if *mode != "shared" {
		fmt.Fprintf(os.Stderr, "unknown simulation mode %q: only 'shared' exists — the analytic merged-results co-location model was removed; contention now emerges from the shared kernel\n", *mode)
		os.Exit(2)
	}
	var err error
	if shardCounts, err = parseShards(*shards); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scale := harness.Scale(*scaleFlag)
	if scale < 1 {
		scale = 1
	}
	if *full {
		scale = 1
	}
	if *benchOut != "" {
		start := time.Now()
		b, err := harness.CollectBench(scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out, err := b.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *benchOut == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*benchOut, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench baseline: %d entries in %v\n",
			len(b.Entries), time.Since(start).Round(time.Millisecond))
		return
	}
	if *obsDump != "" {
		harness.EnableObsDump()
	}
	ran := false
	for _, e := range experiments() {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		start := time.Now()
		if e.name == "shard" || e.name == "txn" || e.name == "rebalance" || e.name == "failover" {
			fmt.Println("simulation mode: shared-kernel (all groups in one discrete-event kernel, deterministic seeds)")
		}
		fmt.Println(e.run(scale))
		fmt.Printf("(%s completed in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
		os.Exit(2)
	}
	if *obsDump != "" {
		exports := harness.TakeObsDumps()
		if len(exports) == 0 {
			fmt.Fprintln(os.Stderr, "obs-dump: no shared-kernel runs executed (only shard/txn/rebalance/failover/qc contribute exports)")
		}
		data, err := json.MarshalIndent(exports, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *obsDump == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*obsDump, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obs-dump: %d exports\n", len(exports))
	}
}
