// Command replica runs one consensus replica over TCP.
//
// A 4-replica Flexi-BFT cluster on one machine:
//
//	replica -id 0 -protocol flexi-bft -f 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	replica -id 1 ... &  replica -id 2 ... &  replica -id 3 ... &
//
// Then drive it with cmd/client. All nodes must share -seed (it derives the
// deterministic keyring and attestation authority, standing in for the key
// distribution ceremony a production deployment would run).
//
// Operator surface: -admin starts an HTTP listener serving /metrics
// (Prometheus text; ?format=json for the flexitrust-obs/v1 document),
// /healthz, /traces, /journal, /audit, and /alerts. The alert-rules
// engine runs on a ticker over the replica's observer; -flight-dir arms
// the post-mortem flight recorder, which also flushes a final bundle on
// graceful shutdown (SIGINT/SIGTERM → drain, close the verify pool) and
// on an event-goroutine panic.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flexitrust/internal/crypto"
	"flexitrust/internal/engine"
	"flexitrust/internal/harness"
	"flexitrust/internal/obs"
	"flexitrust/internal/runtime"
	"flexitrust/internal/transport"
	"flexitrust/internal/trusted"
	"flexitrust/internal/types"
)

func main() {
	id := flag.Int("id", 0, "this replica's id (0..n-1)")
	proto := flag.String("protocol", "Flexi-BFT", "protocol: Pbft, Zyzzyva, Pbft-EA, MinBFT, MinZZ, Flexi-BFT, Flexi-ZZ")
	f := flag.Int("f", 1, "fault threshold")
	peersArg := flag.String("peers", "", "comma-separated host:port of every replica, in id order")
	batch := flag.Int("batch", 100, "requests per consensus batch")
	clients := flag.Int("clients", 1024, "client ids to provision keys for (1..clients)")
	seed := flag.Int64("seed", 42, "shared key-derivation seed")
	admin := flag.String("admin", "", "admin HTTP listen address for /metrics, /healthz, /traces, /journal, /audit, /alerts (e.g. 127.0.0.1:9100; empty disables)")
	obsSample := flag.Float64("obs-sample", obs.DefaultSampleRate, "trace sampling rate in [0,1]")
	flightDir := flag.String("flight-dir", "", "directory for post-mortem flight-record bundles (empty disables)")
	verbose := flag.Bool("v", false, "verbose protocol logging")
	flag.Parse()

	spec, err := harness.ByName(canonical(*proto))
	if err != nil {
		log.Fatal(err)
	}
	n := spec.N(*f)
	peerList := strings.Split(*peersArg, ",")
	if len(peerList) != n {
		log.Fatalf("protocol %s with f=%d needs %d peers, got %d", spec.Name, *f, n, len(peerList))
	}
	book := make(map[int32]string, n)
	for i, hp := range peerList {
		book[int32(i)] = strings.TrimSpace(hp)
	}

	clientIDs := make([]types.ClientID, *clients)
	for i := range clientIDs {
		clientIDs[i] = types.ClientID(i + 1)
	}
	ring, err := crypto.NewKeyring(*seed, n, clientIDs)
	if err != nil {
		log.Fatal(err)
	}
	auth := trusted.NewHMACAuthority(*seed+1, n)

	tp, err := transport.NewTCP(transport.ReplicaAddr(int32(*id)), book[int32(*id)], book)
	if err != nil {
		log.Fatal(err)
	}
	defer tp.Close()

	// The operator surface: one observer per process, exported over the
	// admin listener, watched by the rules engine, and dumped by the flight
	// recorder on alerts, panics, and shutdown.
	observer := obs.New(obs.Config{SampleRate: *obsSample})
	exporter := &obs.Exporter{O: observer, Label: fmt.Sprintf("replica-%d", *id)}
	flight := obs.NewFlightRecorder(exporter, *flightDir)
	rules := obs.NewRules(observer, obs.RulesConfig{Flight: flight})
	exporter.Rules = rules
	rules.Start(obs.DefaultEvalEvery)

	ecfg := engine.DefaultConfig(n, *f)
	ecfg.BatchSize = *batch
	ecfg.Parallel = spec.Parallel
	ecfg.Observer = observer
	node := runtime.NewNode(runtime.NodeConfig{
		ID:             types.ReplicaID(*id),
		Engine:         ecfg,
		NewProtocol:    spec.New,
		Transport:      tp,
		Keyring:        ring,
		Authority:      auth,
		TrustedProfile: trusted.ProfileSGXEnclave,
		KeepLog:        spec.KeepLog,
		Verbose:        *verbose,
		OnPanic: func(r any) {
			// Flush the evidence before the panic propagates.
			rules.Evaluate()
			if path, err := flight.Write("panic"); err == nil && path != "" {
				fmt.Fprintf(os.Stderr, "replica %d: panic flight record: %s\n", *id, path)
			}
		},
	})
	exporter.Healthy = func() bool { return !node.Stopped() }
	fmt.Printf("replica %d/%d (%s, f=%d) listening on %s\n", *id, n, spec.Name, *f, tp.Addr())

	var adminSrv interface {
		Shutdown(context.Context) error
	}
	if *admin != "" {
		srv, addr, err := exporter.Serve(*admin)
		if err != nil {
			log.Fatal(err)
		}
		adminSrv = srv
		fmt.Printf("replica %d admin endpoints on http://%s\n", *id, addr)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("replica %d: draining\n", *id)
	go func() { // a second signal skips the drain
		<-sig
		os.Exit(1)
	}()

	// Graceful shutdown: stop evaluating, close the admin listener, take a
	// final look at the streams, persist the shutdown bundle, then stop the
	// node (which drains and closes the verify pool).
	rules.Stop()
	if adminSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		adminSrv.Shutdown(ctx)
		cancel()
	}
	rules.Evaluate()
	if path, err := flight.Write("shutdown"); err == nil && path != "" {
		fmt.Printf("replica %d: shutdown flight record: %s\n", *id, path)
	}
	node.Stop()
}

// canonical maps friendly spellings onto harness spec names.
func canonical(name string) string {
	switch strings.ToLower(name) {
	case "pbft":
		return "Pbft"
	case "zyzzyva":
		return "Zyzzyva"
	case "pbft-ea", "pbftea":
		return "Pbft-EA"
	case "opbft-ea", "opbftea":
		return "Opbft-ea"
	case "minbft":
		return "MinBFT"
	case "minzz":
		return "MinZZ"
	case "flexi-bft", "flexibft":
		return "Flexi-BFT"
	case "flexi-zz", "flexizz":
		return "Flexi-ZZ"
	default:
		return name
	}
}
