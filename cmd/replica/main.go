// Command replica runs one consensus replica over TCP.
//
// A 4-replica Flexi-BFT cluster on one machine:
//
//	replica -id 0 -protocol flexi-bft -f 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	replica -id 1 ... &  replica -id 2 ... &  replica -id 3 ... &
//
// Then drive it with cmd/client. All nodes must share -seed (it derives the
// deterministic keyring and attestation authority, standing in for the key
// distribution ceremony a production deployment would run).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"flexitrust/internal/crypto"
	"flexitrust/internal/engine"
	"flexitrust/internal/harness"
	"flexitrust/internal/runtime"
	"flexitrust/internal/transport"
	"flexitrust/internal/trusted"
	"flexitrust/internal/types"
)

func main() {
	id := flag.Int("id", 0, "this replica's id (0..n-1)")
	proto := flag.String("protocol", "Flexi-BFT", "protocol: Pbft, Zyzzyva, Pbft-EA, MinBFT, MinZZ, Flexi-BFT, Flexi-ZZ")
	f := flag.Int("f", 1, "fault threshold")
	peersArg := flag.String("peers", "", "comma-separated host:port of every replica, in id order")
	batch := flag.Int("batch", 100, "requests per consensus batch")
	clients := flag.Int("clients", 1024, "client ids to provision keys for (1..clients)")
	seed := flag.Int64("seed", 42, "shared key-derivation seed")
	verbose := flag.Bool("v", false, "verbose protocol logging")
	flag.Parse()

	spec, err := harness.ByName(canonical(*proto))
	if err != nil {
		log.Fatal(err)
	}
	n := spec.N(*f)
	peerList := strings.Split(*peersArg, ",")
	if len(peerList) != n {
		log.Fatalf("protocol %s with f=%d needs %d peers, got %d", spec.Name, *f, n, len(peerList))
	}
	book := make(map[int32]string, n)
	for i, hp := range peerList {
		book[int32(i)] = strings.TrimSpace(hp)
	}

	clientIDs := make([]types.ClientID, *clients)
	for i := range clientIDs {
		clientIDs[i] = types.ClientID(i + 1)
	}
	ring, err := crypto.NewKeyring(*seed, n, clientIDs)
	if err != nil {
		log.Fatal(err)
	}
	auth := trusted.NewHMACAuthority(*seed+1, n)

	tp, err := transport.NewTCP(transport.ReplicaAddr(int32(*id)), book[int32(*id)], book)
	if err != nil {
		log.Fatal(err)
	}
	defer tp.Close()

	ecfg := engine.DefaultConfig(n, *f)
	ecfg.BatchSize = *batch
	ecfg.Parallel = spec.Parallel
	node := runtime.NewNode(runtime.NodeConfig{
		ID:             types.ReplicaID(*id),
		Engine:         ecfg,
		NewProtocol:    spec.New,
		Transport:      tp,
		Keyring:        ring,
		Authority:      auth,
		TrustedProfile: trusted.ProfileSGXEnclave,
		KeepLog:        spec.KeepLog,
		Verbose:        *verbose,
	})
	fmt.Printf("replica %d/%d (%s, f=%d) listening on %s\n", *id, n, spec.Name, *f, tp.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	node.Stop()
}

// canonical maps friendly spellings onto harness spec names.
func canonical(name string) string {
	switch strings.ToLower(name) {
	case "pbft":
		return "Pbft"
	case "zyzzyva":
		return "Zyzzyva"
	case "pbft-ea", "pbftea":
		return "Pbft-EA"
	case "opbft-ea", "opbftea":
		return "Opbft-ea"
	case "minbft":
		return "MinBFT"
	case "minzz":
		return "MinZZ"
	case "flexi-bft", "flexibft":
		return "Flexi-BFT"
	case "flexi-zz", "flexizz":
		return "Flexi-ZZ"
	default:
		return name
	}
}
