// Command client drives a TCP replica cluster (cmd/replica) with a
// YCSB-style closed-loop workload and prints throughput/latency, or issues a
// single ad-hoc operation.
//
//	client -peers ... -protocol flexi-bft -f 1 -ops 10000      # load run
//	client -peers ... -set 42=hello                             # one write
//	client -peers ... -get 42                                   # one read
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"flexitrust/internal/crypto"
	"flexitrust/internal/harness"
	"flexitrust/internal/kvstore"
	"flexitrust/internal/metrics"
	"flexitrust/internal/runtime"
	"flexitrust/internal/transport"
	"flexitrust/internal/types"
	"flexitrust/internal/workload"
)

func main() {
	proto := flag.String("protocol", "Flexi-BFT", "protocol the cluster runs")
	f := flag.Int("f", 1, "fault threshold")
	peersArg := flag.String("peers", "", "comma-separated host:port of every replica, in id order")
	id := flag.Uint64("id", 1, "client id (must be within the replicas' -clients range)")
	ops := flag.Int("ops", 1000, "closed-loop operations to run")
	seed := flag.Int64("seed", 42, "shared key-derivation seed")
	get := flag.String("get", "", "read one key and exit")
	set := flag.String("set", "", "key=value: write one record and exit")
	clients := flag.Int("clients", 1024, "client key range provisioned at replicas")
	flag.Parse()

	spec, err := harness.ByName(canonical(*proto))
	if err != nil {
		log.Fatal(err)
	}
	n := spec.N(*f)
	peerList := strings.Split(*peersArg, ",")
	if len(peerList) != n {
		log.Fatalf("need %d peers for %s f=%d, got %d", n, spec.Name, *f, len(peerList))
	}
	book := make(map[int32]string, n)
	for i, hp := range peerList {
		book[int32(i)] = strings.TrimSpace(hp)
	}
	clientIDs := make([]types.ClientID, *clients)
	for i := range clientIDs {
		clientIDs[i] = types.ClientID(i + 1)
	}
	ring, err := crypto.NewKeyring(*seed, n, clientIDs)
	if err != nil {
		log.Fatal(err)
	}
	tp, err := transport.NewTCP(transport.ClientAddr(*id), "127.0.0.1:0", book)
	if err != nil {
		log.Fatal(err)
	}
	defer tp.Close()

	policy := spec.Policy(n, *f)
	cl := runtime.NewClient(runtime.ClientConfig{
		ID: types.ClientID(*id), N: n, F: *f,
		Transport: tp, Keyring: ring, Replies: policy.Fast,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	switch {
	case *get != "":
		key, _ := strconv.ParseUint(*get, 10, 64)
		out, err := cl.Submit(ctx, (&kvstore.Op{Code: kvstore.OpRead, Key: key}).Encode())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%q\n", out)
	case *set != "":
		kv := strings.SplitN(*set, "=", 2)
		if len(kv) != 2 {
			log.Fatal("-set wants key=value")
		}
		key, _ := strconv.ParseUint(kv[0], 10, 64)
		out, err := cl.Submit(ctx, (&kvstore.Op{Code: kvstore.OpUpdate, Key: key, Value: []byte(kv[1])}).Encode())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", out)
	default:
		gen := workload.NewGenerator(workload.DefaultConfig())
		col := metrics.NewCollector(*ops)
		start := time.Now()
		for i := 0; i < *ops; i++ {
			t0 := time.Now()
			if _, err := cl.Submit(ctx, gen.Next()); err != nil {
				log.Fatalf("op %d: %v", i, err)
			}
			col.Record(time.Since(start), time.Since(t0))
		}
		fmt.Println(col.Summary(time.Since(start)))
	}
}

// canonical maps friendly spellings onto harness spec names.
func canonical(name string) string {
	switch strings.ToLower(name) {
	case "pbft":
		return "Pbft"
	case "zyzzyva":
		return "Zyzzyva"
	case "pbft-ea", "pbftea":
		return "Pbft-EA"
	case "opbft-ea", "opbftea":
		return "Opbft-ea"
	case "minbft":
		return "MinBFT"
	case "minzz":
		return "MinZZ"
	case "flexi-bft", "flexibft":
		return "Flexi-BFT"
	case "flexi-zz", "flexizz":
		return "Flexi-ZZ"
	default:
		return name
	}
}
