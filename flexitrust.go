// Package flexitrust is a from-scratch Go reproduction of "Dissecting BFT
// Consensus: In Trusted Components we Trust!" (EuroSys 2023): the FlexiTrust
// protocol suite (Flexi-BFT, Flexi-ZZ), every baseline the paper evaluates
// (PBFT, Zyzzyva, PBFT-EA/OPBFT-EA, MinBFT, MinZZ), the trusted-component
// substrate they rely on, a real runtime with in-process and TCP transports,
// and a discrete-event simulation harness that regenerates every figure and
// table in the paper's evaluation.
//
// # Quick start
//
//	cluster, _ := flexitrust.NewCluster(flexitrust.ClusterOptions{
//	    Protocol: flexitrust.FlexiBFT,
//	    F:        1,
//	    Clients:  []flexitrust.ClientID{1},
//	})
//	defer cluster.Stop()
//	client := cluster.NewClient(1)
//	res, _ := client.Submit(ctx, flexitrust.Update(42, []byte("hello")))
//
// # Picking a protocol
//
//   - FlexiBFT: two phases, n = 3f+1, one trusted-counter access per
//     consensus at the primary, parallel instances — the paper's headline
//     general-purpose protocol.
//   - FlexiZZ: one phase, speculative, always fast-path with n−f replies —
//     the paper's highest-throughput protocol.
//   - PBFT / Zyzzyva: classic 3f+1 baselines without trusted components.
//   - PBFTEA / MinBFT / MinZZ: 2f+1 trust-bft protocols, provided for
//     comparison; see the paper's Sections 5–7 for why their responsiveness,
//     rollback-safety and sequential-throughput caveats matter.
//
// # Sharded deployment
//
// FlexiTrust's defining property — the trusted counter is touched once per
// consensus, at the primary, so instances run fully in parallel — also
// composes across consensus groups. NewShardedCluster runs S independent
// groups, each with its own replicas and a private trusted-counter
// namespace, behind a deterministic keyspace router:
//
//	cluster, _ := flexitrust.NewShardedCluster(flexitrust.ShardOptions{
//	    Shards:   4,
//	    Protocol: flexitrust.FlexiBFT,
//	    Clients:  []flexitrust.ClientID{1},
//	})
//	defer cluster.Stop()
//	sess := cluster.Session(1)
//	sess.Put(ctx, 42, []byte("hello"))        // routed to ShardFor(42)
//	vals, vers, _ := sess.MultiGet(ctx, []uint64{42, 99, 7})
//
// Single-key operations take a fast path to the one group owning the key;
// MultiGet reads across shards read-committed, fenced by per-shard commit
// watermarks, and reports the per-shard versions it read at (vers).
//
// Co-location is where the protocol choice bites, and the simulation
// substrate measures it the honest way: the shard-scaling experiments run
// all S groups inside ONE discrete-event kernel (sim.MultiCluster) on one
// shared set of machines — machine m hosts one replica of every group, with
// each group's primary on a different machine — so co-located groups
// genuinely contend on each machine's CPU workers and its trusted
// component's timeline. Flexi-BFT/Flexi-ZZ scale near-linearly with S
// because their one-per-consensus AppendF counters live in per-group
// namespaces inside the shared component and interleave freely. MinBFT and
// MinZZ stay flat because their host-sequenced counters (USIG) attest one
// totally-ordered stream per machine, consumed gap-free: every time a
// different co-hosted group appends, the stream must drain and retarget
// (sim.Machine's stream tenancy), so the groups end up time-sharing the
// machine's trusted-component timeline. Reproduce the contrast with
// `benchrunner -exp shard` or BenchmarkShardedThroughput.
//
// # Cross-shard transactions
//
// A multi-key write spanning shards is atomic: ShardSession.MultiPut (and
// the more general ShardSession.Txn) runs two-phase commit over the
// participant groups with a FlexiTrust attested counter as the
// commit-point arbiter. Phase 1 installs per-key intents on each
// participant shard through that shard's own consensus (so prepared state
// is replicated and survives f replica failures); the decision is then ONE
// internally-incremented attested counter access binding
// Attest(q, k, H(decision ‖ txid)) — the paper's one-access-per-consensus
// property applied to the commit point — published to a first-wins
// attestation log; phase 2 drives the decision to the participants:
//
//	sess := cluster.Session(1)
//	err := sess.MultiPut(ctx, map[uint64][]byte{3: a, 9: b, 21: c}) // all-or-nothing
//
// A transaction IS committed iff a verified commit attestation for its id
// is published: a Byzantine coordinator cannot forge one (the component
// signs, the host cannot), and minting both outcomes loses to the log's
// first-wins rule, so the decision is non-equivocable. If a coordinator
// crashes mid-flight, readers see the pending state explicitly — MultiGet
// returns per-key ReadResult values whose BlockedBy field names the
// transaction holding an intent on the key (with the read-committed
// fallback value), instead of silently serving a stale read — and anyone
// may settle the transaction after an in-doubt timeout with
// ShardSession.ResolveTxn: a published decision wins, otherwise the
// arbiter mints an abort that also poisons the id on shards whose Prepare
// never arrived.
//
// The commit path is measured under co-location on the shared-kernel
// simulator (`benchrunner -exp txn`, examples/transactions): FlexiBFT's
// decision accesses interleave freely with the co-hosted groups'
// namespaced counters, so cross-shard transaction latency stays within 2x
// of a single-shard write even at high multi-shard mixes, while
// MinBFT-style host-sequenced decisions time-share each machine's attested
// stream and degrade.
//
// # Elastic placement & rebalancing
//
// The keyspace is owned through an epoch-versioned PlacementMap: explicit
// hash-range → group assignments under a monotonically increasing epoch,
// with a deterministic serialization and digest. Epoch 1 is the uniform
// split; every committed rebalance installs a successor map at epoch+1.
// Sessions route by their cached epoch and, when a store answers that a
// range moved (or is mid-handoff), transparently refresh and retry — an
// epoch flip costs clients a latency blip, never an error.
//
// A live migration moves one hash range between groups while both keep
// serving:
//
//	sess := cluster.Session(1)
//	r := cluster.Placement().GroupRanges(0)[0]      // a range group 0 owns
//	res, err := sess.Rebalance(ctx, flexitrust.KeyRange{Start: r.Start, End: r.Start + (r.End-r.Start)/2}, 1)
//
// The handoff reuses the transaction machinery end to end: prepare
// freezes the range on the source (writes to it are refused until the
// decision; reads keep serving) and exports its records — one consensus
// operation whose deterministic result every replica computes — then
// stages the export on the destination through the destination's own
// consensus. The commit point is ONE attested counter access binding
// H(handoff id ‖ new epoch ‖ new placement digest), published to the same
// first-wins attestation log transactions use; the log additionally
// enforces one placement decision per epoch, so two handoffs (or a
// Byzantine orchestrator minting two conflicting maps) can never both
// activate — no two groups can simultaneously own a range. On commit the
// source deletes and RELEASES the range (late operations answer the
// wrong-shard retry signal) and the destination claims it; an orchestrator
// crash at any boundary resolves through the log exactly like an in-doubt
// transaction (ShardSession.ResolveTxn), with zero lost and zero
// doubly-owned keys either way.
//
// Decision history is compacted by a gossiped stability watermark — the
// oldest transaction/handoff id any coordinator may still retry.
// ShardSession.CompactTxnHistory prunes the attestation log and every
// shard's per-id decision table below it; late retries of pruned ids are
// refused deterministically instead of re-acted.
//
// The migration cost is measured mid-workload on the shared kernel
// (`benchrunner -exp rebalance`, examples/rebalancing,
// harness.FigRebalance): probe writers in the migrating range surface the
// availability dip between freeze and flip. FlexiBFT keeps the window
// short and recovers steady-state throughput right after the flip;
// MinBFT's host-sequenced component stretches both the handoff's consensus
// rounds and the flip access, so the range stays unavailable materially
// longer.
//
// # Per-shard failover
//
// Each group runs its own view-change machinery, and the sharded cluster
// surfaces it: ShardedCluster.Health (and ShardSession.Health) samples
// every group's {view, primary, stalled-since, commit watermark} through a
// progress probe on each replica's event goroutine and classifies groups
// Healthy, ViewChanging or Stalled. Routing is health-aware — a session
// briefly defers to an in-progress election instead of piling requests
// onto a dead primary (then submits anyway, since client resends are what
// drive a stalled election), fails fast with ErrShardDegraded once a group
// is Stalled past the threshold (ShardOptions.StallTimeout), reports a
// degraded shard's keys explicitly in MultiGet (ReadResult.Unavailable)
// rather than blocking the whole read, and a cross-shard transaction with
// a Stalled participant aborts before any intent installs:
//
//	for _, h := range cluster.Health() {
//	    fmt.Println(h.Group, h.State, h.View, h.PrimaryUp)
//	}
//
// A failover is not new machinery — it is a placement change.
// ShardedCluster.Failover evacuates a degraded group's ranges to the
// healthy groups through Session.Rebalance: each range's epoch bump is
// bound to ONE attested counter access published to the same
// first-wins-per-id-and-per-epoch attestation log, so two orchestrators
// racing to fail the same group over can never both re-point a range, and
// an orchestrator crash at any boundary resolves through the log with
// zero lost and zero doubly-owned keys. The evacuation's freeze rides the
// degraded group's own consensus — its resends are exactly what push the
// surviving backups into the view change — so evacuating a merely
// primary-less group also heals it. Recovery timeouts plumb through
// ShardOptions (ViewChangeTimeout, ClientRetry, StallTimeout); per-group
// view numbers and the cluster view-change count surface in Stats.
//
// The mid-failure cost is measured on the shared kernel (`benchrunner
// -exp failover`, examples/failover, harness.FigFailover): group 0's
// primary is killed mid-workload and probe writers in its range surface
// the outage end to end — stalled until the election, refused while the
// range is frozen, serving again once the attested flip lands. Under the
// same timeout budget FlexiBFT's outage and crash→flip window are
// measurably shorter: MinBFT's new primary re-proposes and drains the
// crash backlog one host-sequenced instance at a time, paying stream
// drains against every co-hosted group (TestFailoverRecoveryContrast).
//
// # Observability
//
// ShardOptions.Observe switches on the cluster-wide observability layer
// (internal/obs; zero dependencies, nil-safe throughout) and
// ShardedCluster.Observe hands out its hub. Four streams share one causal
// sequence:
//
// Request tracing. Every routed operation can carry a span tree, sampled
// deterministically (every k-th request at ObserveOptions.SampleRate, so
// runs reproduce). The span taxonomy is layer/name: a single-shard op is
// session/do → consensus/submit (health-gate outcomes are annotations on
// the parent); a cross-shard read is session/multiget with a
// session/read-round child per routing round; a cross-shard
// transaction is txn/2pc → txn/prepare → txn/decide (annotated with the
// attested counter value that bound the decision) → txn/drive; a live
// migration is placement/rebalance → placement/freeze → placement/install
// → placement/decide → placement/drive. A complete trace ends in a reply:
// every span Ended, the root annotated with the outcome
// (TraceRecord.Complete). Traces land in a fixed-size ring —
// Observer.Tracer().Snapshot(), .JSON(), .Dump().
//
// Metrics. A named registry (Observer.Metrics) of counters, gauges and
// log-linear histograms. The registered names live in internal/obs
// (registry.go): shard_op_latency_ns{group=G}, multiget_fanout,
// txn_phase_prepare_ns / txn_phase_decide_ns / txn_phase_drive_ns,
// rebalance_window_ns, health_transitions{group=G}, err_shard_degraded,
// err_unroutable, route_retries, exec_batch_requests. Histograms cap their
// sample cost and report Truncated when percentiles are estimates.
//
// Attested-access audit. Every state-changing trusted-counter access
// (replica consensus counters, the transaction coordinator's arbiter)
// emits an AuditRecord; transaction and placement commit points emit an
// AuditDecision. The online checker enforces the paper's invariants as
// the stream arrives: per-counter monotonicity (a re-minted value is a
// rollback — the Section 6 attack raises a counter-regression alarm, see
// internal/byz), at most one attested decision per transaction id
// (a second is replay or equivocation), and exactly ONE attested access
// behind every decision digest. Alarms() empty is the healthy state; the
// audit never blocks the data path.
//
// Control-plane journal. View changes, health transitions, placement
// epoch flips, evacuations and fired alerts (Observer.Journal().Events()),
// stamped from the same sequence as the audit stream — an epoch flip is
// always ordered after the attested decision that authorized it, and an
// alert after the evidence that triggered it.
//
// # Operations
//
// The operator surface turns the four streams into something a deployment
// can scrape, page on, and debug from after the fact.
//
// Export. ShardedCluster.ObserveSnapshot renders the whole cluster as one
// versioned document (schema flexitrust-obs/v1): every metric, the
// retained traces, the audit stream, the journal, fired alerts and
// per-shard consensus stats — each stream with retained/dropped/truncated
// accounting, so a scrape never silently under-reports.
// ShardedCluster.ObserveHandler serves the admin endpoints for any HTTP
// listener: /metrics (Prometheus text exposition, names prefixed
// flexitrust_, per-group series labeled {group="G"}; ?format=json for the
// full document), /healthz (200 ok, or 503 when an audit alarm is
// outstanding or a shard is Stalled), /traces, /journal, /audit and
// /alerts. cmd/replica mounts the same surface on its -admin listener and
// drains gracefully on SIGINT/SIGTERM; `benchrunner -obs-dump` writes one
// export per shared-kernel simulation run.
//
// Alert rules. ObserveOptions.Rules arms an SLO engine (internal/obs
// Rules) evaluated on the cluster's watch loop — or from virtual time in
// the simulator, so alert tests are deterministic. The rules are named
// and stable: "audit_alarm" (any audit-checker alarm, promoted), "stall"
// (a health transition into Stalled — detected with zero client traffic),
// "slo_error_burn" (degraded/unroutable error rate over budget),
// "latency_p99" (windowed per-group p99 over threshold, off by default),
// "health_flapping" and "verify_pool_saturation". Every alert draws a
// number from the shared causal sequence and lands in the journal as an
// EventAlert, so "the alert at seq 19 fired after the transition at seq
// 18" is a statement the records themselves support. A healthy cluster
// fires nothing: the defaults are chosen so the clean path is silent.
//
// Flight recorder. RulesOptions.FlightDir arms a post-mortem recorder: a
// bounded ring of recent metrics snapshots plus, whenever an alert fires
// — or the process panics, drains, or the cluster stops dirty — one
// self-contained JSON bundle (schema flexitrust-flight/v1) with the full
// export and the metrics trend leading up to the incident. A stalled
// shard is diagnosable from the bundle alone after the process is gone.
// See examples/observability for the end-to-end drill.
//
// # Leased reads
//
// A linearizable single-key read normally costs a full consensus round.
// With ShardOptions.ReadLease on (opt-in), each group's primary serves
// them locally under a read lease — a committed operation, not a
// side-channel. The grant rides the group's own consensus: OpLeaseGrant
// bumps a replicated, monotone lease epoch in the store, and the executing
// primary binds the grant to the group's trusted counter with one AppendF
// access over H(namespace ‖ view ‖ epoch ‖ duration), whose attestation it
// returns with every leased reply. A read carries a fence — the client's
// observed commit watermark — and the primary answers from its committed
// read view only at or above that fence. The client accepts a reply only
// when it binds the exact lease it saw granted (replica, view, epoch, a
// verified grant attestation — checked once per epoch, not per read) and
// its watermark covers the fence; anything else falls back to a consensus
// read of the same key, transparently.
//
// Revocation is deterministic, not clock-dependent: entering a view change
// revokes locally on every replica; a committed OpLeaseRevoke or a
// rebalance's range freeze deactivates the replicated lease state, which
// every replica's execute loop enforces; and a placement epoch flip
// invalidates the client-side binding. The expiry clock (LeaseDuration,
// shortened client-side by LeaseSafetyMargin) only bounds how long a
// partitioned primary can keep answering clients that have seen nothing
// newer — any client whose watermark advanced past the stale primary's
// frozen state fails the fence check on its next read. A deposed primary
// that keeps serving anyway (the byzantine case, internal/byz) loses to
// the same client-side checks: the binding names a lease the cluster no
// longer holds.
//
// The speedup is measured, not asserted: `benchrunner -exp reads` runs a
// 95/5 mix on the shared kernel with the lease on and off under identical
// seeds (harness.FigReadLease). Leased reads cost the primary one fenced
// lookup instead of a protocol round, so read throughput scales with what
// the machines can serve rather than what consensus can order — while the
// 5% writes still pay the full protocol, unchanged. Watch lease_reads_total,
// lease_fallbacks_total, lease_revocations and the read_latency_lease_ns /
// read_latency_consensus_ns split in the metrics registry.
//
// # Hot-path performance
//
// Two structural optimizations keep public-key cryptography off the
// consensus event loop (both default-on, gated by engine.Config.EnableQC so
// `benchrunner -exp qc` can A/B them under identical seeds):
//
// Aggregated quorum certificates. When a replica completes a vote quorum it
// assembles a crypto.QuorumCert — slot coordinates, batch (and, for the
// speculative protocols, history) digest, and a signer bitmap, with a
// canonical versioned wire encoding that also carries one signature per
// signer for individually-signed deployments. The certificate rides in
// view-change PreparedProofs, so a NewView validator performs ONE
// structural/batched check (Provider.VerifyQC) per slot instead of
// re-verifying 2f+1 loose votes; Zyzzyva-family replicas likewise check a
// client commit certificate's response set as one QC.
//
// Off-thread batched verification. Signature and attestation checks run off
// the replica's single event goroutine — crypto.VerifyPool worker
// goroutines in the real runtime, scheduled completion events in the
// simulator (charged at the amortized batch-verification cost
// sim.CostModel.VerifyBatchN rather than the inline DSVerify cost) — with
// the completion delivered back to the event loop as an ordinary event that
// re-checks protocol state before acting. A bounded memo of verified
// (statement, signer) pairs (crypto.VerifyMemo) makes re-proposed batches,
// resent votes and view-change replays one-time costs; only successes are
// cached. Request digests are computed once and memoized on the request
// (crypto.RequestDigest), so admission, batching, proposal and execution
// share one SHA-256 evaluation.
//
// Windowed amortized attestation. The remaining per-instance cost on the
// FlexiTrust hot path is the executing primary's trusted-counter access —
// one AppendF per batch. With engine.Config.AttestWindow > 1 (opt-in,
// Flexi-BFT and Flexi-ZZ only; the MinBFT/MinZZ USIG stream IS the
// sequencing mechanism and cannot be amortized) the primary assigns
// sequence numbers locally, folds each batch digest into a running chain
// (d_i = H(d_{i-1} ‖ batchDigest_i ‖ seq_i), anchored at a per-view
// genesis) and spends ONE AppendF on the chain tip per window of up to
// AttestWindow batches — flushing when the window fills, when BatchTimeout
// elapses on a partial window, and unconditionally before abandoning a
// view. The resulting crypto.WindowCert broadcasts as a WindowAttest;
// backups hold their votes (or speculative execution) for a slot until the
// covering certificate verifies. Safety reduces to AppendF monotonicity:
// the primary mints at most one attestation per (epoch, value), and a
// replica accepts a window only if it carries the next counter value,
// starts right above its covered prefix, and chains from the previously
// attested tip — so at each chain position exactly one window can ever be
// accepted, making every slot→digest binding unique per view. Reordering
// or substituting a batch inside a window changes the fold and fails the
// chain check (or the slot→digest match); equivocating across windows
// would need a second attestation for an already-spent counter value,
// which the trusted component cannot produce (internal/byz mounts both and
// shows every honest replica rejecting). View changes carry the covering
// certificate in PreparedProofs, and the new primary re-proposes the
// surviving prefix under one fresh window bound to its CounterInit. The
// amortization is measured, not asserted: `benchrunner -exp window` A/Bs
// window 1 against window 16 under identical seeds and reports attested
// accesses per committed request from the audit stream.
//
// The attested-access discipline is untouched: verification is read-only,
// so each decision still binds to exactly one trusted-counter access — or,
// windowed, each flushed window binds to exactly one access covering a
// gap-free, non-overlapping sequence range, the relaxed invariant the
// audit checker enforces per window record — and the checker stays
// alarm-free on honest runs. Watch sig_verifies_total,
// sig_verify_cache_hits, verify_pool_depth and the qc_size histogram in the
// metrics registry; profile with `benchrunner -cpuprofile/-memprofile`.
//
// The recorded perf baseline (BENCH_baseline.json at the repository root,
// schema flexitrust-bench/v1) pins the headline experiments at fixed seeds
// and scales; regenerate with `benchrunner -bench-out`, check with
// `benchrunner -bench-validate`.
//
// The measurement side lives under internal/harness and is exposed through
// cmd/benchrunner and the repository-root benchmarks.
package flexitrust

import (
	"time"

	"flexitrust/internal/engine"
	"flexitrust/internal/kvstore"
	"flexitrust/internal/runtime"
	"flexitrust/internal/trusted"
	"flexitrust/internal/types"
)

// Re-exported identifier types.
type (
	// ReplicaID identifies a replica (0..n-1).
	ReplicaID = types.ReplicaID
	// ClientID identifies a client of the replicated service.
	ClientID = types.ClientID
	// Digest is a SHA-256 digest.
	Digest = types.Digest
	// Client is the RSM client library.
	Client = runtime.Client
)

// Protocol selects a consensus protocol.
type Protocol int

// The protocols this library implements.
const (
	// FlexiBFT is the paper's two-phase FlexiTrust protocol (Section 8.2).
	FlexiBFT Protocol = iota
	// FlexiZZ is the paper's single-phase speculative FlexiTrust protocol
	// (Section 8.3).
	FlexiZZ
	// PBFT is Castro & Liskov's protocol, the 3f+1 baseline.
	PBFT
	// Zyzzyva is the speculative 3f+1 baseline.
	Zyzzyva
	// PBFTEA is the trusted-log trust-bft baseline (2f+1).
	PBFTEA
	// MinBFT is the two-phase trusted-counter trust-bft protocol (2f+1).
	MinBFT
	// MinZZ is the single-phase speculative trust-bft protocol (2f+1).
	MinZZ
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case FlexiBFT:
		return "Flexi-BFT"
	case FlexiZZ:
		return "Flexi-ZZ"
	case PBFT:
		return "Pbft"
	case Zyzzyva:
		return "Zyzzyva"
	case PBFTEA:
		return "Pbft-EA"
	case MinBFT:
		return "MinBFT"
	case MinZZ:
		return "MinZZ"
	default:
		return "Protocol?"
	}
}

// N returns the replication factor this protocol needs for fault threshold
// f: 3f+1 for BFT and FlexiTrust protocols, 2f+1 for trust-bft.
func (p Protocol) N(f int) int {
	switch p {
	case PBFTEA, MinBFT, MinZZ:
		return 2*f + 1
	default:
		return 3*f + 1
	}
}

// Replies returns the client's matching-response quorum on the fast path.
func (p Protocol) Replies(n, f int) int {
	switch p {
	case FlexiZZ:
		return 2*f + 1
	case Zyzzyva, MinZZ:
		return n
	default:
		return f + 1
	}
}

// ClusterOptions configures an in-process cluster (NewCluster).
type ClusterOptions struct {
	// Protocol picks the consensus protocol (default FlexiBFT).
	Protocol Protocol
	// F is the fault threshold (default 1); the cluster runs Protocol.N(F)
	// replicas.
	F int
	// Clients lists the client identities to provision keys for.
	Clients []ClientID
	// BatchSize is requests per consensus batch (default 100).
	BatchSize int
	// BatchTimeout flushes partial batches (default 2ms).
	BatchTimeout time.Duration
	// Records sizes the key-value store (default 600k).
	Records int
	// ViewChangeTimeout is how long a replica waits on a stalled request
	// before suspecting its primary (default 500ms).
	ViewChangeTimeout time.Duration
	// ClientRetry is the client library's re-broadcast interval for
	// unresolved requests (default 1s); failover is resend-driven, so set
	// it near ViewChangeTimeout for snappy recovery.
	ClientRetry time.Duration
	// EmulateTrustedLatency sleeps the trusted component's hardware access
	// cost (hardware-faithful demos; off by default).
	EmulateTrustedLatency bool
	// Verbose enables replica logging.
	Verbose bool
}

// Cluster is a running in-process replicated service.
type Cluster struct {
	inner *runtime.Cluster
	opts  ClusterOptions
}

// NewCluster boots an in-process cluster of real replica nodes (goroutines,
// Ed25519 signatures, HMAC-attested trusted components) connected by an
// in-memory transport.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.F <= 0 {
		opts.F = 1
	}
	n := opts.Protocol.N(opts.F)
	ecfg := engine.DefaultConfig(n, opts.F)
	if opts.BatchSize > 0 {
		ecfg.BatchSize = opts.BatchSize
	}
	if opts.BatchTimeout > 0 {
		ecfg.BatchTimeout = opts.BatchTimeout
	}
	if opts.ViewChangeTimeout > 0 {
		ecfg.ViewChangeTimeout = opts.ViewChangeTimeout
	}
	inner, err := runtime.NewCluster(runtime.ClusterConfig{
		N: n, F: opts.F,
		Engine:           ecfg,
		NewProtocol:      constructor(opts.Protocol),
		Replies:          opts.Protocol.Replies(n, opts.F),
		Clients:          opts.Clients,
		ClientRetry:      opts.ClientRetry,
		TrustedProfile:   trusted.ProfileSGXEnclave,
		KeepLog:          trustedKeepLog(opts.Protocol),
		EmulateTCLatency: opts.EmulateTrustedLatency,
		Records:          opts.Records,
		Verbose:          opts.Verbose,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner, opts: opts}, nil
}

// NewClient attaches a client library for one of the provisioned ids.
func (c *Cluster) NewClient(id ClientID) *Client { return c.inner.NewClient(id) }

// Stop halts every replica.
func (c *Cluster) Stop() { c.inner.Stop() }

// StateDigest returns replica r's state-machine digest (read on the
// replica's event goroutine, so it is safe while the cluster runs).
func (c *Cluster) StateDigest(r ReplicaID) Digest {
	d, _ := c.inner.Nodes[r].DigestSnapshot()
	return d
}

// CrashReplica fail-stops one replica (failure demos; the protocols keep
// committing as long as at most F replicas are down).
func (c *Cluster) CrashReplica(r ReplicaID) { c.inner.Nodes[r].Stop() }

// Key-value operation helpers: the replicated state machine is a YCSB-style
// key-value store; these build its operation payloads.

// Read builds a read of key.
func Read(key uint64) []byte {
	return (&kvstore.Op{Code: kvstore.OpRead, Key: key}).Encode()
}

// Update builds an overwrite of key with value.
func Update(key uint64, value []byte) []byte {
	return (&kvstore.Op{Code: kvstore.OpUpdate, Key: key, Value: value}).Encode()
}

// Insert builds an insert of a fresh key.
func Insert(key uint64, value []byte) []byte {
	return (&kvstore.Op{Code: kvstore.OpInsert, Key: key, Value: value}).Encode()
}

// Scan builds a short range scan of count keys starting at key.
func Scan(key uint64, count uint16) []byte {
	return (&kvstore.Op{Code: kvstore.OpScan, Key: key, Count: count}).Encode()
}
