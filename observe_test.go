package flexitrust

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"flexitrust/internal/obs"
)

// TestShardedClusterObservability is the acceptance test for the
// observability layer: a real sharded runtime (goroutine replicas, signed
// messages, attested counters) drives writes, reads, one cross-shard
// transaction and one live rebalance with tracing at sample rate 1.0 and
// the audit stream attached — then asserts complete span trees ending in a
// reply, exactly one attested access behind the transaction decision and
// behind the placement flip, zero audit alarms, and the control-plane
// journal recording the epoch flip causally after the decision.
func TestShardedClusterObservability(t *testing.T) {
	cluster, err := NewShardedCluster(ShardOptions{
		Shards:    2,
		Protocol:  FlexiBFT,
		F:         1,
		Clients:   []ClientID{1},
		BatchSize: 4,
		Records:   1000,
		Observe:   ObserveOptions{Enabled: true, SampleRate: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	o := cluster.Observe()
	if o == nil {
		t.Fatal("Observe() returned nil on an observability-enabled cluster")
	}
	sess := cluster.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Writes across both shards, and a read back.
	const keys = 8
	for k := uint64(0); k < keys; k++ {
		if err := sess.Put(ctx, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if got, err := sess.Get(ctx, 3); err != nil || !bytes.Equal(got, []byte("v3")) {
		t.Fatalf("get 3 = %q, %v", got, err)
	}

	// One cross-shard transaction: fresh keys, one per shard.
	txnKeys := map[int]uint64{}
	for k := uint64(1000); len(txnKeys) < 2; k++ {
		if _, ok := txnKeys[cluster.ShardFor(k)]; !ok {
			txnKeys[cluster.ShardFor(k)] = k
		}
	}
	if err := sess.MultiPut(ctx, map[uint64][]byte{
		txnKeys[0]: []byte("txn-0"),
		txnKeys[1]: []byte("txn-1"),
	}); err != nil {
		t.Fatal(err)
	}

	// One live rebalance: half of shard 0's range moves to shard 1.
	full := cluster.Placement().GroupRanges(0)[0]
	r := KeyRange{Start: full.Start, End: full.Start + (full.End-full.Start)/2}
	res, err := sess.Rebalance(ctx, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.Epoch != 2 {
		t.Fatalf("rebalance result: %+v", res)
	}

	// --- Traces: everything sampled, every span tree complete. ---
	traces := o.Tracer().Snapshot()
	if len(traces) == 0 {
		t.Fatal("no traces captured at sample rate 1.0")
	}
	roots := map[string]int{} // "layer/name" of each trace's root
	for _, tr := range traces {
		if !tr.Complete() {
			t.Fatalf("trace %d has unfinished spans: %+v", tr.ID, tr.Spans)
		}
		root := tr.Spans[0]
		if root.Parent != 0 {
			t.Fatalf("trace %d: first span is not the root: %+v", tr.ID, root)
		}
		roots[root.Layer+"/"+root.Name]++
	}
	for _, want := range []string{"session/do", "txn/2pc", "placement/rebalance"} {
		if roots[want] == 0 {
			t.Fatalf("no trace rooted at %q; roots seen: %v", want, roots)
		}
	}
	// A routed op's tree ends in a reply: root annotated with the reply,
	// consensus child holding the committed sequence.
	foundReply := false
	for _, tr := range traces {
		root := tr.Spans[0]
		if root.Layer != "session" || root.Name != "do" {
			continue
		}
		for _, note := range root.Notes {
			if strings.HasPrefix(note, "reply:") {
				foundReply = true
			}
		}
	}
	if !foundReply {
		t.Fatal("no session/do trace carries a reply annotation")
	}
	if o.Tracer().Dump() == "" {
		t.Fatal("trace dump is empty")
	}

	// --- Audit: zero alarms, exactly one attested access per decision. ---
	if alarms := o.Audit().Alarms(); len(alarms) != 0 {
		t.Fatalf("audit raised %d alarms on a clean run: %v", len(alarms), alarms)
	}
	var txnDecisions, placementDecisions int
	for _, d := range o.Audit().Decisions() {
		switch d.Kind {
		case obs.DecisionTxn:
			txnDecisions++
		case obs.DecisionPlacement:
			placementDecisions++
			if d.Epoch != 2 {
				t.Fatalf("placement decision claims epoch %d, want 2", d.Epoch)
			}
		}
		if n := o.Audit().AccessesForDigest(d.Digest); n != 1 {
			t.Fatalf("%s decision %d cost %d attested accesses, want exactly 1", d.Kind, d.TxID, n)
		}
	}
	if txnDecisions != 1 {
		t.Fatalf("audit recorded %d txn decisions, want exactly 1 (the MultiPut)", txnDecisions)
	}
	if placementDecisions != 1 {
		t.Fatalf("audit recorded %d placement decisions, want exactly 1 (the rebalance)", placementDecisions)
	}

	// --- Journal: the epoch flip is recorded after its attested decision. ---
	var flip *JournalEvent
	for _, ev := range o.Journal().Events() {
		if ev.Kind == obs.EventEpochFlip {
			ev := ev
			flip = &ev
		}
	}
	if flip == nil {
		t.Fatal("journal has no epoch-flip event for the rebalance")
	}
	for _, d := range o.Audit().Decisions() {
		if d.Kind == obs.DecisionPlacement && flip.Seq < d.Seq {
			t.Fatalf("epoch flip (seq %d) journaled before its attested decision (seq %d)",
				flip.Seq, d.Seq)
		}
	}

	// --- Metrics: the routed-op latency histograms saw the traffic. ---
	snap := o.Metrics().Snapshot()
	var opCount uint64
	for name, h := range snap.Histograms {
		if strings.HasPrefix(name, obs.MShardOpLatency) {
			opCount += h.Count
		}
	}
	if opCount == 0 {
		t.Fatalf("no %s samples recorded; histograms: %v", obs.MShardOpLatency, snap.Histograms)
	}
}
