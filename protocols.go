package flexitrust

import (
	"flexitrust/internal/engine"
	"flexitrust/internal/protocols/flexibft"
	"flexitrust/internal/protocols/flexizz"
	"flexitrust/internal/protocols/minbft"
	"flexitrust/internal/protocols/minzz"
	"flexitrust/internal/protocols/pbft"
	"flexitrust/internal/protocols/pbftea"
	"flexitrust/internal/protocols/zyzzyva"
)

// trustedKeepLog reports whether a protocol's trusted components must store
// appended digests for Lookup (the attested-log protocols).
func trustedKeepLog(p Protocol) bool { return p == PBFTEA }

// constructor maps a Protocol to its implementation constructor.
func constructor(p Protocol) func(engine.Config) engine.Protocol {
	switch p {
	case FlexiBFT:
		return func(cfg engine.Config) engine.Protocol { return flexibft.New(cfg) }
	case FlexiZZ:
		return func(cfg engine.Config) engine.Protocol { return flexizz.New(cfg) }
	case PBFT:
		return func(cfg engine.Config) engine.Protocol { return pbft.New(cfg) }
	case Zyzzyva:
		return func(cfg engine.Config) engine.Protocol { return zyzzyva.New(cfg) }
	case PBFTEA:
		return func(cfg engine.Config) engine.Protocol { return pbftea.New(cfg) }
	case MinBFT:
		return func(cfg engine.Config) engine.Protocol { return minbft.New(cfg) }
	case MinZZ:
		return func(cfg engine.Config) engine.Protocol { return minzz.New(cfg) }
	default:
		return func(cfg engine.Config) engine.Protocol { return flexibft.New(cfg) }
	}
}
