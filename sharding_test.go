package flexitrust

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"
)

// TestShardedClusterQuickstart exercises the documented sharded public
// surface: writes routed across 4 shards commit, reads return them, and a
// cross-shard MultiGet is read-committed against the watermark fence.
func TestShardedClusterQuickstart(t *testing.T) {
	cluster, err := NewShardedCluster(ShardOptions{
		Shards:    4,
		Protocol:  FlexiBFT,
		F:         1,
		Clients:   []ClientID{1},
		BatchSize: 4,
		Records:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if cluster.Shards() != 4 {
		t.Fatalf("Shards() = %d", cluster.Shards())
	}
	sess := cluster.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Write enough dense keys that every shard owns some.
	const keys = 24
	touched := make(map[int]bool)
	want := make(map[uint64][]byte)
	var all []uint64
	for k := uint64(0); k < keys; k++ {
		v := []byte(fmt.Sprintf("v%d", k))
		if err := sess.Put(ctx, k, v); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
		touched[cluster.ShardFor(k)] = true
		want[k] = v
		all = append(all, k)
	}
	if len(touched) != 4 {
		t.Fatalf("dense keys only reached %d of 4 shards", len(touched))
	}
	for s, w := range cluster.Watermarks() {
		if w == 0 {
			t.Fatalf("shard %d committed nothing", s)
		}
	}

	vals, vers, err := sess.MultiGet(ctx, all)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if !bytes.Equal(vals[k].Value, v) {
			t.Fatalf("key %d: got %q want %q", k, vals[k].Value, v)
		}
		if vals[k].BlockedBy != 0 {
			t.Fatalf("key %d unexpectedly blocked by txn %d", k, vals[k].BlockedBy)
		}
	}
	if len(vers) != 4 {
		t.Fatalf("version vector has %d entries", len(vers))
	}

	st := cluster.Stats()
	if st.Committed < keys {
		t.Fatalf("stats report %d commits, want ≥ %d", st.Committed, keys)
	}

	// DoOp routes pre-built op payloads through the same session.
	res, err := DoOp(ctx, sess, Read(3))
	if err != nil || string(res) != "v3" {
		t.Fatalf("DoOp read = %q, %v", res, err)
	}
}

// TestShardedClusterTransactions exercises the documented cross-shard
// transaction surface: MultiPut spans shards atomically, MultiGet returns
// the committed values unblocked, and the general Txn form works with
// typed writes.
func TestShardedClusterTransactions(t *testing.T) {
	cluster, err := NewShardedCluster(ShardOptions{
		Shards:    2,
		Protocol:  FlexiBFT,
		F:         1,
		Clients:   []ClientID{1},
		BatchSize: 4,
		Records:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	sess := cluster.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Fresh keys above Records, one per shard.
	keys := map[int]uint64{}
	for k := uint64(1000); len(keys) < 2; k++ {
		if _, ok := keys[cluster.ShardFor(k)]; !ok {
			keys[cluster.ShardFor(k)] = k
		}
	}
	writes := map[uint64][]byte{
		keys[0]: []byte("txn-shard0"),
		keys[1]: []byte("txn-shard1"),
	}
	if err := sess.MultiPut(ctx, writes); err != nil {
		t.Fatal(err)
	}
	vals, _, err := sess.MultiGet(ctx, []uint64{keys[0], keys[1]})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range writes {
		rr := vals[k]
		if !rr.Found || !bytes.Equal(rr.Value, want) || rr.BlockedBy != 0 {
			t.Fatalf("key %d after MultiPut: %+v", k, rr)
		}
	}

	// The typed-write form: an update of an existing (preloaded) key plus
	// an upsert, in one transaction.
	res, err := sess.Txn(ctx, []TxnWrite{
		UpdateWrite(3, []byte("updated")),
		InsertWrite(keys[0]+64, []byte("inserted")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("txn result: %+v", res)
	}
	got, err := DoOp(ctx, sess, Read(3))
	if err != nil || string(got) != "updated" {
		t.Fatalf("updated key reads %q, %v", got, err)
	}
}
