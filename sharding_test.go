package flexitrust

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"
)

// TestShardedClusterQuickstart exercises the documented sharded public
// surface: writes routed across 4 shards commit, reads return them, and a
// cross-shard MultiGet is read-committed against the watermark fence.
func TestShardedClusterQuickstart(t *testing.T) {
	cluster, err := NewShardedCluster(ShardOptions{
		Shards:    4,
		Protocol:  FlexiBFT,
		F:         1,
		Clients:   []ClientID{1},
		BatchSize: 4,
		Records:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if cluster.Shards() != 4 {
		t.Fatalf("Shards() = %d", cluster.Shards())
	}
	sess := cluster.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Write enough dense keys that every shard owns some.
	const keys = 24
	touched := make(map[int]bool)
	want := make(map[uint64][]byte)
	var all []uint64
	for k := uint64(0); k < keys; k++ {
		v := []byte(fmt.Sprintf("v%d", k))
		if err := sess.Put(ctx, k, v); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
		touched[cluster.ShardFor(k)] = true
		want[k] = v
		all = append(all, k)
	}
	if len(touched) != 4 {
		t.Fatalf("dense keys only reached %d of 4 shards", len(touched))
	}
	for s, w := range cluster.Watermarks() {
		if w == 0 {
			t.Fatalf("shard %d committed nothing", s)
		}
	}

	vals, vers, err := sess.MultiGet(ctx, all)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if !bytes.Equal(vals[k].Value, v) {
			t.Fatalf("key %d: got %q want %q", k, vals[k].Value, v)
		}
		if vals[k].BlockedBy != 0 {
			t.Fatalf("key %d unexpectedly blocked by txn %d", k, vals[k].BlockedBy)
		}
	}
	if len(vers) != 4 {
		t.Fatalf("version vector has %d entries", len(vers))
	}

	st := cluster.Stats()
	if st.Committed < keys {
		t.Fatalf("stats report %d commits, want ≥ %d", st.Committed, keys)
	}

	// DoOp routes pre-built op payloads through the same session.
	res, err := DoOp(ctx, sess, Read(3))
	if err != nil || string(res) != "v3" {
		t.Fatalf("DoOp read = %q, %v", res, err)
	}
}

// TestShardedClusterTransactions exercises the documented cross-shard
// transaction surface: MultiPut spans shards atomically, MultiGet returns
// the committed values unblocked, and the general Txn form works with
// typed writes.
func TestShardedClusterTransactions(t *testing.T) {
	cluster, err := NewShardedCluster(ShardOptions{
		Shards:    2,
		Protocol:  FlexiBFT,
		F:         1,
		Clients:   []ClientID{1},
		BatchSize: 4,
		Records:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	sess := cluster.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Fresh keys above Records, one per shard.
	keys := map[int]uint64{}
	for k := uint64(1000); len(keys) < 2; k++ {
		if _, ok := keys[cluster.ShardFor(k)]; !ok {
			keys[cluster.ShardFor(k)] = k
		}
	}
	writes := map[uint64][]byte{
		keys[0]: []byte("txn-shard0"),
		keys[1]: []byte("txn-shard1"),
	}
	if err := sess.MultiPut(ctx, writes); err != nil {
		t.Fatal(err)
	}
	vals, _, err := sess.MultiGet(ctx, []uint64{keys[0], keys[1]})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range writes {
		rr := vals[k]
		if !rr.Found || !bytes.Equal(rr.Value, want) || rr.BlockedBy != 0 {
			t.Fatalf("key %d after MultiPut: %+v", k, rr)
		}
	}

	// The typed-write form: an update of an existing (preloaded) key plus
	// an upsert, in one transaction.
	res, err := sess.Txn(ctx, []TxnWrite{
		UpdateWrite(3, []byte("updated")),
		InsertWrite(keys[0]+64, []byte("inserted")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("txn result: %+v", res)
	}
	got, err := DoOp(ctx, sess, Read(3))
	if err != nil || string(got) != "updated" {
		t.Fatalf("updated key reads %q, %v", got, err)
	}
}

// TestShardedClusterRebalancing exercises the documented elastic-placement
// surface: a live range migration between two shards, a stale session
// transparently re-routing through the new epoch, and decision-history
// compaction afterwards.
func TestShardedClusterRebalancing(t *testing.T) {
	cluster, err := NewShardedCluster(ShardOptions{
		Shards:    2,
		Protocol:  FlexiBFT,
		F:         1,
		Clients:   []ClientID{1, 2},
		BatchSize: 4,
		Records:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if cluster.PlacementEpoch() != 1 {
		t.Fatalf("fresh cluster at epoch %d", cluster.PlacementEpoch())
	}

	// Migrate the lower half of shard 0's range; find fresh keys inside it.
	full := cluster.Placement().GroupRanges(0)[0]
	r := KeyRange{Start: full.Start, End: full.Start + (full.End-full.Start)/2}
	var keys []uint64
	for k := uint64(1000); len(keys) < 2; k++ {
		if r.Contains(HashKey(k)) {
			keys = append(keys, k)
		}
	}
	mover, stale := cluster.Session(1), cluster.Session(2)
	for i, k := range keys {
		if err := mover.Insert(ctx, k, []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	res, err := mover.Rebalance(ctx, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.Epoch != 2 || res.Moved < len(keys) {
		t.Fatalf("rebalance result: %+v", res)
	}
	if cluster.PlacementEpoch() != 2 {
		t.Fatalf("cluster epoch %d after migration", cluster.PlacementEpoch())
	}
	if cluster.ShardFor(keys[0]) != 1 {
		t.Fatalf("moved key %d still routes to shard %d", keys[0], cluster.ShardFor(keys[0]))
	}

	// The stale session cached epoch 1; it re-routes transparently.
	for i, k := range keys {
		got, err := stale.Get(ctx, k)
		if err != nil || !bytes.Equal(got, []byte(fmt.Sprintf("r%d", i))) {
			t.Fatalf("stale read of key %d = %q, %v", k, got, err)
		}
	}
	if stale.Epoch() != 2 {
		t.Fatalf("stale session still at epoch %d", stale.Epoch())
	}
	if err := stale.Put(ctx, keys[0], []byte("post-flip")); err != nil {
		t.Fatal(err)
	}

	// Compaction shrinks the decision history to the placement record.
	if _, err := mover.CompactTxnHistory(ctx); err != nil {
		t.Fatal(err)
	}
	if n := cluster.TxnLogLen(); n != 1 {
		t.Fatalf("log retains %d decisions after compaction, want 1 (the placement)", n)
	}
}

// TestShardedClusterFailover exercises the public failover surface: health
// classification of a primary kill, health-aware riding through, and
// ShardedCluster.Failover evacuating the stalled shard's ranges as
// attested placement changes with every key keeping exactly one home.
func TestShardedClusterFailover(t *testing.T) {
	cluster, err := NewShardedCluster(ShardOptions{
		Shards:            3,
		Protocol:          FlexiBFT,
		F:                 1,
		Clients:           []ClientID{1},
		BatchSize:         4,
		Records:           1000,
		ViewChangeTimeout: 150 * time.Millisecond,
		ClientRetry:       200 * time.Millisecond,
		StallTimeout:      250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	sess := cluster.Session(1)

	for _, h := range cluster.Health() {
		if h.State != GroupHealthy {
			t.Fatalf("fresh shard %d classified %v", h.Group, h.State)
		}
	}
	// Fresh keys per shard, above the preloaded records.
	var keys []uint64
	for s := 0; s < cluster.Shards(); s++ {
		for k := uint64(1000); ; k++ {
			if cluster.ShardFor(k) == s {
				keys = append(keys, k)
				break
			}
		}
	}
	for i, k := range keys {
		if err := sess.Insert(ctx, k, []byte(fmt.Sprintf("f%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	cluster.StopReplica(0, 0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := cluster.Health()[0]; h.State == GroupStalled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 never classified stalled: %+v", cluster.Health()[0])
		}
		time.Sleep(5 * time.Millisecond)
	}

	epochBefore := cluster.PlacementEpoch()
	res, err := cluster.Failover(ctx, sess, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Group != 0 || len(res.Handoffs) == 0 {
		t.Fatalf("failover result %+v", res)
	}
	if got := cluster.PlacementEpoch(); got != epochBefore+uint64(len(res.Handoffs)) {
		t.Fatalf("epoch %d after %d evacuating handoffs from %d", got, len(res.Handoffs), epochBefore)
	}
	if rs := cluster.Placement().GroupRanges(0); len(rs) != 0 {
		t.Fatalf("evacuated shard still owns %v", rs)
	}
	for i, k := range keys {
		if cluster.ShardFor(k) == 0 {
			t.Fatalf("key %d still routes to the evacuated shard", k)
		}
		got, err := sess.Get(ctx, k)
		if err != nil || !bytes.Equal(got, []byte(fmt.Sprintf("f%d", i))) {
			t.Fatalf("key %d = %q, %v after failover", k, got, err)
		}
	}
	// The evacuation's traffic drove the wedged shard's election; stats
	// surface the view change.
	if st := cluster.Stats(); st.ViewChanges == 0 {
		t.Fatalf("stats report no view change after failover: %+v", st)
	}
	// A stopped replica can be brought back under its identity.
	cluster.RestartReplica(0, 0)
}
