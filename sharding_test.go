package flexitrust

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"
)

// TestShardedClusterQuickstart exercises the documented sharded public
// surface: writes routed across 4 shards commit, reads return them, and a
// cross-shard MultiGet is read-committed against the watermark fence.
func TestShardedClusterQuickstart(t *testing.T) {
	cluster, err := NewShardedCluster(ShardOptions{
		Shards:    4,
		Protocol:  FlexiBFT,
		F:         1,
		Clients:   []ClientID{1},
		BatchSize: 4,
		Records:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if cluster.Shards() != 4 {
		t.Fatalf("Shards() = %d", cluster.Shards())
	}
	sess := cluster.Session(1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Write enough dense keys that every shard owns some.
	const keys = 24
	touched := make(map[int]bool)
	want := make(map[uint64][]byte)
	var all []uint64
	for k := uint64(0); k < keys; k++ {
		v := []byte(fmt.Sprintf("v%d", k))
		if err := sess.Put(ctx, k, v); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
		touched[cluster.ShardFor(k)] = true
		want[k] = v
		all = append(all, k)
	}
	if len(touched) != 4 {
		t.Fatalf("dense keys only reached %d of 4 shards", len(touched))
	}
	for s, w := range cluster.Watermarks() {
		if w == 0 {
			t.Fatalf("shard %d committed nothing", s)
		}
	}

	vals, vers, err := sess.MultiGet(ctx, all)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if !bytes.Equal(vals[k], v) {
			t.Fatalf("key %d: got %q want %q", k, vals[k], v)
		}
	}
	if len(vers) != 4 {
		t.Fatalf("version vector has %d entries", len(vers))
	}

	st := cluster.Stats()
	if st.Committed < keys {
		t.Fatalf("stats report %d commits, want ≥ %d", st.Committed, keys)
	}

	// DoOp routes pre-built op payloads through the same session.
	res, err := DoOp(ctx, sess, Read(3))
	if err != nil || string(res) != "v3" {
		t.Fatalf("DoOp read = %q, %v", res, err)
	}
}
