package flexitrust

import (
	"flexitrust/internal/obs"
)

// Observability re-exports: the public names for the internal/obs layer a
// sharded deployment exposes through ShardedCluster.Observe. See the
// "Observability" section of the package documentation in flexitrust.go for
// the span taxonomy, the audit invariants and the metric name registry.

// Observer is a deployment's observability hub: request tracer, metrics
// registry, attested-access audit stream and control-plane event journal.
// Every accessor is nil-safe — a disabled deployment hands out a nil
// Observer and all instrumentation no-ops.
type Observer = obs.Observer

// TraceRecord is one sampled request trace: its spans, parent links and
// annotations (Observer.Tracer().Snapshot()).
type TraceRecord = obs.TraceRecord

// SpanRecord is one span of a trace: layer, name, timing and annotations.
type SpanRecord = obs.SpanRecord

// MetricsSnapshot is a point-in-time copy of every counter, gauge and
// histogram in the registry (Observer.Metrics().Snapshot()).
type MetricsSnapshot = obs.MetricsSnapshot

// HistogramStats summarizes one histogram: count, mean, min/max, p50/p99.
type HistogramStats = obs.HistogramStats

// AuditRecord is one attested trusted-counter access in the audit stream:
// host, namespace, counter, attested value and the digest it bound.
type AuditRecord = obs.AccessRecord

// AuditDecision marks one transaction/placement decision's attested commit
// point in the audit stream.
type AuditDecision = obs.DecisionRecord

// AuditAlarm is one audit invariant violation (counter regression, replayed
// or equivocated decision, wrong access count per decision). An empty
// Alarms() slice is the healthy state.
type AuditAlarm = obs.Alarm

// JournalEvent is one control-plane event (view change, health transition,
// placement epoch flip, evacuation), causally ordered against the audit
// stream by its shared sequence number.
type JournalEvent = obs.Event

// ObserveOptions configures a sharded deployment's observability
// (ShardOptions.Observe). The zero value disables it — no observer is
// created and every instrumentation point no-ops.
type ObserveOptions struct {
	// Enabled switches observability on.
	Enabled bool
	// SampleRate is the fraction of requests traced, in (0, 1]; 0 uses the
	// default (1/64). Sampling is deterministic (every k-th request), so
	// runs are reproducible.
	SampleRate float64
	// TraceBuffer is the number of most-recent sampled traces retained
	// (default 256).
	TraceBuffer int
}

// Observe returns the cluster's observer, or nil when ShardOptions.Observe
// was not enabled. The returned Observer's accessors (Tracer, Metrics,
// Audit, Journal) are nil-safe either way.
func (c *ShardedCluster) Observe() *Observer { return c.inner.Observe() }
