package flexitrust

import (
	"net/http"
	"time"

	"flexitrust/internal/obs"
)

// Observability re-exports: the public names for the internal/obs layer a
// sharded deployment exposes through ShardedCluster.Observe. See the
// "Observability" section of the package documentation in flexitrust.go for
// the span taxonomy, the audit invariants and the metric name registry.

// Observer is a deployment's observability hub: request tracer, metrics
// registry, attested-access audit stream and control-plane event journal.
// Every accessor is nil-safe — a disabled deployment hands out a nil
// Observer and all instrumentation no-ops.
type Observer = obs.Observer

// TraceRecord is one sampled request trace: its spans, parent links and
// annotations (Observer.Tracer().Snapshot()).
type TraceRecord = obs.TraceRecord

// SpanRecord is one span of a trace: layer, name, timing and annotations.
type SpanRecord = obs.SpanRecord

// MetricsSnapshot is a point-in-time copy of every counter, gauge and
// histogram in the registry (Observer.Metrics().Snapshot()).
type MetricsSnapshot = obs.MetricsSnapshot

// HistogramStats summarizes one histogram: count, mean, min/max, p50/p99.
type HistogramStats = obs.HistogramStats

// AuditRecord is one attested trusted-counter access in the audit stream:
// host, namespace, counter, attested value and the digest it bound.
type AuditRecord = obs.AccessRecord

// AuditDecision marks one transaction/placement decision's attested commit
// point in the audit stream.
type AuditDecision = obs.DecisionRecord

// AuditAlarm is one audit invariant violation (counter regression, replayed
// or equivocated decision, wrong access count per decision). An empty
// Alarms() slice is the healthy state.
type AuditAlarm = obs.Alarm

// JournalEvent is one control-plane event (view change, health transition,
// placement epoch flip, evacuation, alert), causally ordered against the
// audit stream by its shared sequence number.
type JournalEvent = obs.Event

// AlertRecord is one fired SLO rule: rule name, group, measured value and
// the causal sequence number shared with its journal entry. The rule
// names are the obs.Rule* constants ("audit_alarm", "stall",
// "slo_error_burn", "latency_p99", "health_flapping",
// "verify_pool_saturation").
type AlertRecord = obs.Alert

// FlightRecord is one post-mortem bundle (schema flexitrust-flight/v1):
// the full observability export at write time plus the recent metrics
// history, persisted when an alert fires or the cluster stops dirty.
type FlightRecord = obs.FlightRecord

// ObsExport is the versioned flexitrust-obs/v1 snapshot document
// (ShardedCluster.ObserveSnapshot): metrics, traces, audit, journal,
// alerts and per-shard consensus stats, each stream with retained/dropped
// accounting so a scrape never silently under-reports.
type ObsExport = obs.Export

// ShardObsExport is one shard's entry in ObsExport.Shards.
type ShardObsExport = obs.ShardExport

// ObserveOptions configures a sharded deployment's observability
// (ShardOptions.Observe). The zero value disables it — no observer is
// created and every instrumentation point no-ops.
type ObserveOptions struct {
	// Enabled switches observability on.
	Enabled bool
	// SampleRate is the fraction of requests traced, in (0, 1]; 0 uses the
	// default (1/64). Sampling is deterministic (every k-th request), so
	// runs are reproducible.
	SampleRate float64
	// TraceBuffer is the number of most-recent sampled traces retained
	// (default 256).
	TraceBuffer int
	// Rules attaches the SLO alert-rules engine (requires Enabled).
	Rules RulesOptions
}

// RulesOptions configures the alert-rules engine over an observed
// cluster. When Enabled, the cluster runs a watch loop that samples shard
// health and evaluates the rules every EvalEvery, fires OnAlert for each
// alert, and — when FlightDir is set — persists a post-mortem
// flexitrust-flight/v1 bundle on every alert and on a dirty Stop.
type RulesOptions struct {
	// Enabled switches the engine (and the cluster's watch loop) on.
	Enabled bool
	// EvalEvery is the watch-loop period (default 50ms).
	EvalEvery time.Duration
	// ErrorRatePerSec budgets degraded/unroutable errors per second; 0
	// means 1/s, negative disables the rule.
	ErrorRatePerSec float64
	// LatencyP99SLO alerts when a shard's windowed p99 op latency exceeds
	// it; 0 disables the rule (the default — an idle cluster then cannot
	// false-alarm).
	LatencyP99SLO time.Duration
	// FlightDir, when set, arms the flight recorder in this directory.
	FlightDir string
	// OnAlert, when set, is called synchronously for every fired alert.
	OnAlert func(AlertRecord)
}

// Observe returns the cluster's observer, or nil when ShardOptions.Observe
// was not enabled. The returned Observer's accessors (Tracer, Metrics,
// Audit, Journal) are nil-safe either way.
func (c *ShardedCluster) Observe() *Observer { return c.inner.Observe() }

// ObserveSnapshot renders the whole cluster's observability state as one
// flexitrust-obs/v1 document: every stream with retained/dropped counts,
// fired alerts, and per-shard consensus stats (latency-sample truncation
// included).
func (c *ShardedCluster) ObserveSnapshot() ObsExport { return c.inner.ObserveSnapshot() }

// ObserveHandler serves the cluster's admin endpoints — /metrics
// (Prometheus text; ?format=json for ObserveSnapshot), /healthz (503 when
// an audit alarm is outstanding or a shard is stalled), /traces,
// /journal, /audit, /alerts — for mounting on any HTTP listener.
func (c *ShardedCluster) ObserveHandler() http.Handler { return c.inner.Exporter().Handler() }

// Alerts returns every alert the rules engine has retained (nil when
// ObserveOptions.Rules was not enabled). Oldest first.
func (c *ShardedCluster) Alerts() []AlertRecord { return c.inner.Rules().Alerts() }

// EvaluateRules forces one rules evaluation outside the watch loop's
// cadence and returns the alerts it fired (tests, deterministic drivers).
func (c *ShardedCluster) EvaluateRules() []AlertRecord { return c.inner.Rules().Evaluate() }

// FlightRecords returns the paths of post-mortem bundles written so far
// (nil when no flight recorder is armed).
func (c *ShardedCluster) FlightRecords() []string { return c.inner.Flight().Written() }
