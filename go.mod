module flexitrust

go 1.24
