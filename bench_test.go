// Benchmarks regenerating every figure and table in the paper's evaluation
// (Section 9). Each Benchmark runs the corresponding experiment through the
// discrete-event harness and reports client-observed throughput in virtual
// time as txn/s metrics; cmd/benchrunner produces the full tables at
// publication scale.
//
// Scale note: benchmarks default to reduced client counts and measurement
// windows (the full sweeps take minutes); run cmd/benchrunner -full for the
// paper-scale parameters. The comparative shapes are identical.
package flexitrust

import (
	"fmt"
	"testing"
	"time"

	"flexitrust/internal/crypto"
	"flexitrust/internal/harness"
	"flexitrust/internal/kvstore"
	"flexitrust/internal/obs"
	"flexitrust/internal/trusted"
	"flexitrust/internal/types"
)

// benchScale shrinks measurement windows for benchmark runs.
const benchScale = harness.Scale(4)

// reportRows logs an experiment table and reports the headline metric.
func reportRows(b *testing.B, t *harness.Table) {
	b.Helper()
	b.Log("\n" + t.String())
	if len(t.Rows) > 0 {
		b.ReportMetric(t.Rows[len(t.Rows)-1].Result.Throughput, "txn/s")
	}
}

// BenchmarkFig5_TrustedCounterCosts regenerates Figure 5: PBFT with a single
// worker thread and trusted counter / signature-attestation accesses
// injected into its phases (bars a–g).
func BenchmarkFig5_TrustedCounterCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig5(benchScale))
	}
}

// BenchmarkFig6i_ThroughputLatency regenerates Figure 6(i): throughput and
// latency as the client count grows, f=8, all ten protocol variants.
func BenchmarkFig6i_ThroughputLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig6Throughput([]int{4000, 20000, 48000}, benchScale))
	}
}

// BenchmarkFig6ii_Scalability regenerates Figure 6(ii)/(iii): f = 4..32.
func BenchmarkFig6ii_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig6Scalability([]int{4, 8, 16}, benchScale))
	}
}

// BenchmarkFig6iv_Batching regenerates Figure 6(iv)/(v): batch size sweep.
func BenchmarkFig6iv_Batching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig6Batching([]int{10, 100, 1000}, benchScale))
	}
}

// BenchmarkFig6vi_WAN regenerates Figure 6(vi)/(vii): replicas across 1..6
// regions at f=20.
func BenchmarkFig6vi_WAN(b *testing.B) {
	if testing.Short() {
		b.Skip("WAN sweep is expensive")
	}
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig6WAN([]int{1, 3, 6}, benchScale))
	}
}

// BenchmarkFig7_ReplicaFailure regenerates Figure 7: one crashed non-primary
// replica; Flexi-ZZ keeps its fast path, MinZZ and Zyzzyva fall to theirs.
func BenchmarkFig7_ReplicaFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig7Failure([]int{4, 8}, benchScale))
	}
}

// BenchmarkFig8_TCLatencySweep regenerates Figure 8: peak throughput at 97
// replicas as trusted-counter access latency grows from 1ms to 200ms.
func BenchmarkFig8_TCLatencySweep(b *testing.B) {
	if testing.Short() {
		b.Skip("97-replica sweep is expensive")
	}
	costs := []time.Duration{time.Millisecond, 3 * time.Millisecond, 10 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig8TCSweep(costs, benchScale))
	}
}

// BenchmarkFig9_PerMachine regenerates Figure 9: total throughput divided by
// replica count, Flexi-ZZ (3f+1) vs MinZZ (2f+1).
func BenchmarkFig9_PerMachine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig9PerMachine([]int{4, 8}, benchScale))
	}
}

// BenchmarkShardedThroughput measures aggregate throughput of S co-located
// consensus groups, all hosted in one shared discrete-event kernel on one
// set of machines: FlexiBFT scales near-linearly (one primary-side
// trusted-counter access per consensus in a per-group namespace, so groups
// interleave like parallel instances), MinBFT stays flat (every alternation
// on a machine's host-sequenced USIG stream drains and retargets it, so
// co-hosted groups time-share the machine's TC timeline).
func BenchmarkShardedThroughput(b *testing.B) {
	protos := []struct{ short, name string }{
		{"flexibft", "Flexi-BFT"},
		{"minbft", "MinBFT"},
	}
	for _, p := range protos {
		for _, shards := range []int{1, 2, 4, 8} {
			p, shards := p, shards
			b.Run(fmt.Sprintf("%sx%d", p.short, shards), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := harness.ShardScalingPoint(p.name, shards, benchScale)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.Throughput, "txn/s")
				}
			})
		}
	}
}

// BenchmarkShardedThroughputObserved runs the flexibft shard-scaling
// deployment with the observability layer attached at its default sampling
// (tracing 1/64, metrics and the audit stream always on). Virtual-time
// throughput is identical to the unobserved run by construction; the
// instrumentation cost is real CPU, so compare this benchmark's wall-clock
// ns/op against BenchmarkShardedThroughput/flexibftx4 — the acceptance
// bound is <5%.
func BenchmarkShardedThroughputObserved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := obs.New(obs.Config{})
		res, err := harness.ShardScalingPointObserved("Flexi-BFT", 4, benchScale, o)
		if err != nil {
			b.Fatal(err)
		}
		if alarms := o.Audit().Alarms(); len(alarms) != 0 {
			b.Fatalf("audit raised %d alarms: %v", len(alarms), alarms)
		}
		b.ReportMetric(res.Throughput, "txn/s")
	}
}

// --- Microbenchmarks for the substrates (allocation profiles) ---

// BenchmarkTrustedAppendF measures the FlexiTrust counter primitive.
func BenchmarkTrustedAppendF(b *testing.B) {
	auth := trusted.NewHMACAuthority(1, 1)
	tc := trusted.New(trusted.Config{Host: 0, Profile: trusted.ProfileSGXEnclave, Attestor: auth.For(0)})
	d := crypto.HashBytes([]byte("payload"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.AppendF(0, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttestationVerify measures attestation verification.
func BenchmarkAttestationVerify(b *testing.B) {
	auth := trusted.NewHMACAuthority(1, 4)
	tc := trusted.New(trusted.Config{Host: 2, Profile: trusted.ProfileSGXEnclave, Attestor: auth.For(2)})
	att, _ := tc.AppendF(0, crypto.HashBytes([]byte("x")))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !auth.Verify(att) {
			b.Fatal("verify failed")
		}
	}
}

// BenchmarkBatchDigest measures request-batch digesting (100 requests, the
// paper's default batch).
func BenchmarkBatchDigest(b *testing.B) {
	reqs := make([]*types.ClientRequest, 100)
	for i := range reqs {
		reqs[i] = &types.ClientRequest{Client: types.ClientID(i), ReqNo: 1, Op: []byte("12345678901234567890")}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = crypto.BatchDigest(reqs)
	}
}

// BenchmarkKVStoreApply measures state-machine execution.
func BenchmarkKVStoreApply(b *testing.B) {
	store := kvstore.New(600_000)
	op := (&kvstore.Op{Code: kvstore.OpUpdate, Key: 7, Value: []byte("12345678")}).Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Apply(op)
	}
}
